package slist

import (
	"encoding/binary"
	"testing"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

// FuzzStoreOps drives the store with an operation tape decoded from fuzz
// input: appends, clears and reads over a handful of lists with a tiny
// pool, checking contents against an in-memory reference after every read.
func FuzzStoreOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 254, 253, 0, 0, 0, 1, 1, 1})
	seed := make([]byte, 300)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, tape []byte) {
		const nLists = 8
		d := pagedisk.New()
		pol, _ := buffer.NewPolicy("lru", 4)
		pool := buffer.New(d, 4, pol)
		lp, _ := NewListPolicy("smallest")
		s := NewStore(pool, "fuzz", nLists, lp)
		ref := make([][]int32, nLists)

		for i := 0; i+1 < len(tape); i += 2 {
			op := tape[i] % 3
			id := int32(tape[i+1] % nLists)
			switch op {
			case 0: // append a value derived from the tape position
				v := int32(binary.LittleEndian.Uint16(append([]byte{tape[i+1]}, byte(i))))
				if err := s.Append(id, v); err != nil {
					t.Fatalf("append: %v", err)
				}
				ref[id] = append(ref[id], v)
			case 1: // clear
				if err := s.Clear(id); err != nil {
					t.Fatalf("clear: %v", err)
				}
				ref[id] = nil
			case 2: // verify
				got, err := s.ReadAll(id)
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				if len(got) != len(ref[id]) {
					t.Fatalf("list %d has %d entries, want %d", id, len(got), len(ref[id]))
				}
				for j := range got {
					if got[j] != ref[id][j] {
						t.Fatalf("list %d entry %d = %d, want %d", id, j, got[j], ref[id][j])
					}
				}
			}
		}
		// Final full verification plus pin accounting.
		for id := int32(0); id < nLists; id++ {
			got, err := s.ReadAll(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref[id]) {
				t.Fatalf("final list %d: %d entries, want %d", id, len(got), len(ref[id]))
			}
		}
		if pool.PinnedFrames() != 0 {
			t.Fatal("pins leaked")
		}
	})
}

// FuzzIteratorCorruptChain points a list head at an arbitrary page image
// and block index, then walks it. The iterator's contract under corruption
// is: terminate, report an error or a bounded result, never panic, never
// leak a pin. Seeds cover a well-formed block, a self-referential cycle
// and an oversized entry count.
func FuzzIteratorCorruptChain(f *testing.F) {
	var pg pagedisk.Page
	claimBlock(&pg, 0, 1)
	setBlockUsed(&pg, 0, 3)
	for i := 0; i < 3; i++ {
		setBlockEntry(&pg, 0, i, int32(i+10))
	}
	f.Add(append([]byte(nil), pg[:]...), int16(0))
	setBlockNext(&pg, 0, Ref{Page: 0, Blk: 0}) // cycle
	f.Add(append([]byte(nil), pg[:]...), int16(0))
	setBlockUsed(&pg, 0, 200) // used beyond block capacity
	f.Add(append([]byte(nil), pg[:]...), int16(0))
	f.Add([]byte{}, int16(-7))

	f.Fuzz(func(t *testing.T, raw []byte, blk int16) {
		d := pagedisk.New()
		fid := d.CreateFile("fuzz")
		for i := 0; i < 2; i++ {
			p, err := d.Allocate(fid)
			if err != nil {
				t.Fatal(err)
			}
			var img pagedisk.Page
			if off := i * pagedisk.PageSize; off < len(raw) {
				copy(img[:], raw[off:])
			}
			if err := d.Write(fid, p, &img); err != nil {
				t.Fatal(err)
			}
		}
		pol, _ := buffer.NewPolicy("lru", 4)
		pool := buffer.New(d, 4, pol)
		s := &Store{
			pool:     pool,
			file:     fid,
			head:     []Ref{{Page: 0, Blk: blk}},
			tail:     []Ref{nilRef},
			length:   []int32{0},
			lastUse:  []int64{0},
			fillPage: pagedisk.InvalidPage,
		}
		vals, _ := s.ReadAll(0) // must not panic or hang; error is fine
		if max := 2 * BlocksPerPage * BlockEntries; len(vals) > max {
			t.Fatalf("iterator produced %d entries from %d blocks of storage", len(vals), 2*BlocksPerPage)
		}
		if pool.PinnedFrames() != 0 {
			t.Fatal("pins leaked on corrupt chain")
		}
	})
}
