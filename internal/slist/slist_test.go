package slist

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"tcstudy/internal/buffer"
	"tcstudy/internal/pagedisk"
)

func newStore(t *testing.T, frames int, listPolicy string, numLists int) (*Store, *pagedisk.Disk) {
	t.Helper()
	d := pagedisk.New()
	pol, err := buffer.NewPolicy("lru", frames)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(d, frames, pol)
	lp, err := NewListPolicy(listPolicy)
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(pool, "lists", numLists, lp), d
}

func wantList(t *testing.T, s *Store, id int32, want []int32) {
	t.Helper()
	got, err := s.ReadAll(id)
	if err != nil {
		t.Fatalf("ReadAll(%d): %v", id, err)
	}
	if len(got) != len(want) {
		t.Fatalf("list %d = %v (len %d), want len %d", id, got, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list %d[%d] = %d, want %d", id, i, got[i], want[i])
		}
	}
	if s.Len(id) != len(want) {
		t.Fatalf("Len(%d) = %d, want %d", id, s.Len(id), len(want))
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	s, _ := newStore(t, 8, "smallest", 4)
	if err := s.AppendAll(0, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(0, []int32{4}); err != nil {
		t.Fatal(err)
	}
	wantList(t, s, 0, []int32{1, 2, 3, 4})
	wantList(t, s, 1, []int32{42})
	wantList(t, s, 2, nil)
}

func TestPageCapacityMatchesPaper(t *testing.T) {
	// 450 successors per page: 30 blocks of 15 (Section 5.1).
	if BlocksPerPage*BlockEntries != 450 {
		t.Fatalf("page capacity = %d, paper says 450", BlocksPerPage*BlockEntries)
	}
	if headerSize+BlocksPerPage*blockSize != pagedisk.PageSize {
		t.Fatalf("layout does not fill the page: %d != %d",
			headerSize+BlocksPerPage*blockSize, pagedisk.PageSize)
	}
	s, d := newStore(t, 8, "smallest", 2)
	vals := make([]int32, 450)
	for i := range vals {
		vals[i] = int32(i + 1)
	}
	if err := s.AppendAll(0, vals); err != nil {
		t.Fatal(err)
	}
	if got := d.NumPages(s.File()); got != 1 {
		t.Fatalf("450 entries occupy %d pages, want 1", got)
	}
	if err := s.Append(0, 451); err != nil {
		t.Fatal(err)
	}
	if got := d.NumPages(s.File()); got != 2 {
		t.Fatalf("451 entries occupy %d pages, want 2", got)
	}
	wantList(t, s, 0, append(vals, 451))
}

func TestInterListClustering(t *testing.T) {
	// 30 single-entry lists fit exactly on one page.
	s, d := newStore(t, 8, "smallest", 40)
	for id := int32(0); id < 30; id++ {
		if err := s.Append(id, id+1); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.NumPages(s.File()); got != 1 {
		t.Fatalf("30 small lists occupy %d pages, want 1", got)
	}
	if err := s.Append(30, 31); err != nil {
		t.Fatal(err)
	}
	if got := d.NumPages(s.File()); got != 2 {
		t.Fatalf("31st list should open page 2, got %d pages", got)
	}
	for id := int32(0); id <= 30; id++ {
		wantList(t, s, id, []int32{id + 1})
	}
}

func TestClusteringDisabled(t *testing.T) {
	s, d := newStore(t, 8, "smallest", 8)
	s.SetClustering(false)
	for id := int32(0); id < 5; id++ {
		if err := s.Append(id, id); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.NumPages(s.File()); got != 5 {
		t.Fatalf("unclustered: %d pages, want 5", got)
	}
}

func TestSplitRelocatesVictim(t *testing.T) {
	s, _ := newStore(t, 8, "smallest", 4)
	// Fill one page: list 0 gets 29 blocks (435 entries), list 1 one block.
	big := make([]int32, 29*BlockEntries)
	for i := range big {
		big[i] = int32(i + 1)
	}
	if err := s.AppendAll(0, big); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(1, []int32{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	// Growing list 0 must split the page and relocate list 1.
	if err := s.Append(0, 999); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Splits != 1 || st.ListsMoved != 1 {
		t.Fatalf("stats = %+v, want one split/move", st)
	}
	if st.EntriesMoved != 3 {
		t.Fatalf("EntriesMoved = %d, want 3", st.EntriesMoved)
	}
	wantList(t, s, 0, append(big, 999))
	wantList(t, s, 1, []int32{7, 8, 9})
}

func TestOverflowWithoutVictims(t *testing.T) {
	s, _ := newStore(t, 8, "smallest", 2)
	vals := make([]int32, 1200) // spans 3 pages, sole owner
	for i := range vals {
		vals[i] = int32(i)
	}
	if err := s.AppendAll(0, vals); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Splits != 0 {
		t.Fatalf("sole-owner growth caused %d splits", st.Splits)
	}
	if st.Overflows < 2 {
		t.Fatalf("Overflows = %d, want >= 2", st.Overflows)
	}
	wantList(t, s, 0, vals)
}

func TestSmallestPolicyPicksShortest(t *testing.T) {
	p, _ := NewListPolicy("smallest")
	lens := map[int32]int32{3: 10, 5: 2, 9: 7}
	v := p.Victim([]int32{3, 5, 9}, func(id int32) int32 { return lens[id] }, nil)
	if v != 5 {
		t.Fatalf("smallest picked %d, want 5", v)
	}
}

func TestLargestPolicyPicksLongest(t *testing.T) {
	p, _ := NewListPolicy("largest")
	lens := map[int32]int32{3: 10, 5: 2, 9: 7}
	v := p.Victim([]int32{3, 5, 9}, func(id int32) int32 { return lens[id] }, nil)
	if v != 3 {
		t.Fatalf("largest picked %d, want 3", v)
	}
}

func TestLRUPolicyPicksStalest(t *testing.T) {
	p, _ := NewListPolicy("lru")
	use := map[int32]int64{3: 100, 5: 50, 9: 70}
	v := p.Victim([]int32{3, 5, 9}, nil, func(id int32) int64 { return use[id] })
	if v != 5 {
		t.Fatalf("lru picked %d, want 5", v)
	}
}

func TestRandomPolicyPicksCandidate(t *testing.T) {
	p, _ := NewListPolicy("random")
	for i := 0; i < 10; i++ {
		v := p.Victim([]int32{3, 5, 9}, nil, nil)
		if v != 3 && v != 5 && v != 9 {
			t.Fatalf("random picked non-candidate %d", v)
		}
	}
}

func TestUnknownListPolicy(t *testing.T) {
	if _, err := NewListPolicy("nope"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestAllListPoliciesPreserveContents(t *testing.T) {
	for _, name := range ListPolicyNames() {
		t.Run(name, func(t *testing.T) {
			s, _ := newStore(t, 6, name, 16)
			want := map[int32][]int32{}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 4000; i++ {
				id := int32(rng.Intn(16))
				v := int32(rng.Intn(10000) + 1)
				if err := s.Append(id, v); err != nil {
					t.Fatal(err)
				}
				want[id] = append(want[id], v)
			}
			for id := int32(0); id < 16; id++ {
				wantList(t, s, id, want[id])
			}
		})
	}
}

func TestIteratorReleasesPins(t *testing.T) {
	s, _ := newStore(t, 4, "smallest", 2)
	if err := s.AppendAll(0, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	it := s.NewIterator(0)
	it.Next()
	if got := s.Pool().PinnedFrames(); got != 1 {
		t.Fatalf("mid-iteration pinned frames = %d, want 1", got)
	}
	it.Close()
	if got := s.Pool().PinnedFrames(); got != 0 {
		t.Fatalf("post-close pinned frames = %d, want 0", got)
	}
	// Exhausting the iterator also releases the pin.
	it2 := s.NewIterator(0)
	for {
		if _, ok := it2.Next(); !ok {
			break
		}
	}
	if got := s.Pool().PinnedFrames(); got != 0 {
		t.Fatalf("exhausted iterator pinned frames = %d, want 0", got)
	}
	it2.Close()
}

func TestIteratorEmptyList(t *testing.T) {
	s, _ := newStore(t, 4, "smallest", 1)
	it := s.NewIterator(0)
	if _, ok := it.Next(); ok {
		t.Fatal("Next on empty list returned a value")
	}
	it.Close()
	if it.Err() != nil {
		t.Fatalf("Err = %v", it.Err())
	}
}

func TestClear(t *testing.T) {
	s, _ := newStore(t, 8, "smallest", 4)
	if err := s.AppendAll(0, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Clear(0); err != nil {
		t.Fatal(err)
	}
	wantList(t, s, 0, nil)
	// Freed blocks are reusable: a new list lands on the same page.
	if err := s.AppendAll(1, []int32{9}); err != nil {
		t.Fatal(err)
	}
	wantList(t, s, 1, []int32{9})
}

func TestPinList(t *testing.T) {
	s, _ := newStore(t, 8, "smallest", 2)
	vals := make([]int32, 1000) // 3 pages
	for i := range vals {
		vals[i] = int32(i)
	}
	if err := s.AppendAll(0, vals); err != nil {
		t.Fatal(err)
	}
	handles, err := s.PinList(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 3 {
		t.Fatalf("PinList pinned %d pages, want 3", len(handles))
	}
	if got := s.Pool().PinnedFrames(); got != 3 {
		t.Fatalf("pinned frames = %d, want 3", got)
	}
	s.UnpinAll(handles)
	if got := s.Pool().PinnedFrames(); got != 0 {
		t.Fatalf("after UnpinAll pinned frames = %d", got)
	}
}

func TestPinListNoFrames(t *testing.T) {
	s, _ := newStore(t, 4, "smallest", 2)
	vals := make([]int32, 450*5)
	for i := range vals {
		vals[i] = int32(i)
	}
	if err := s.AppendAll(0, vals); err != nil {
		t.Fatal(err)
	}
	_, err := s.PinList(0)
	if !errors.Is(err, buffer.ErrNoFrames) {
		t.Fatalf("err = %v, want ErrNoFrames", err)
	}
	if got := s.Pool().PinnedFrames(); got != 0 {
		t.Fatalf("failed PinList leaked %d pins", got)
	}
}

func TestIOErrorPropagatesThroughAppend(t *testing.T) {
	s, d := newStore(t, 4, "smallest", 2)
	big := make([]int32, 2000)
	if err := s.AppendAll(0, big); err != nil {
		t.Fatal(err)
	}
	d.FailAfter(0)
	err := s.AppendAll(1, big)
	if !errors.Is(err, pagedisk.ErrIOInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	d.FailAfter(-1)
}

func TestTinyPoolPanics(t *testing.T) {
	d := pagedisk.New()
	pol, _ := buffer.NewPolicy("lru", 2)
	pool := buffer.New(d, 2, pol)
	lp, _ := NewListPolicy("smallest")
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore accepted a 2-frame pool")
		}
	}()
	NewStore(pool, "x", 1, lp)
}

// TestStoreMatchesReferenceProperty drives random interleaved appends with a
// tiny buffer pool (forcing evictions and splits) and checks every list
// against an in-memory reference.
func TestStoreMatchesReferenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nLists = 12
		d := pagedisk.New()
		pol, _ := buffer.NewPolicy("lru", 4)
		pool := buffer.New(d, 4, pol)
		lpName := ListPolicyNames()[rng.Intn(len(ListPolicyNames()))]
		lp, _ := NewListPolicy(lpName)
		s := NewStore(pool, "p", nLists, lp)
		ref := make([][]int32, nLists)
		ops := rng.Intn(3000) + 100
		for i := 0; i < ops; i++ {
			id := int32(rng.Intn(nLists))
			run := rng.Intn(8) + 1
			vals := make([]int32, run)
			for j := range vals {
				vals[j] = int32(rng.Intn(1 << 20))
			}
			if err := s.AppendAll(id, vals); err != nil {
				return false
			}
			ref[id] = append(ref[id], vals...)
		}
		for id := int32(0); id < nLists; id++ {
			got, err := s.ReadAll(id)
			if err != nil || len(got) != len(ref[id]) {
				return false
			}
			for i := range got {
				if got[i] != ref[id][i] {
					return false
				}
			}
		}
		return pool.PinnedFrames() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
