// Package graphgen implements the paper's synthetic DAG workload generator
// (Section 5.2).
//
// Graphs are controlled by three parameters: the number of nodes n, the
// average out-degree F, and the generation locality l. Each node i draws an
// out-degree uniformly from {0, …, 2F} and its arcs go to targets drawn
// uniformly from [i+1, min(i+l, n)], which makes the node numbering a
// topological order by construction. Duplicate arcs produced by sampling
// with replacement are eliminated, and the locality bounds the achievable
// out-degree near the locality limit (the two effects the paper's footnote
// 1 notes when |G| < n·F).
package graphgen

import (
	"fmt"
	"math/rand"

	"tcstudy/internal/graph"
	"tcstudy/internal/relation"
)

// Params controls graph generation.
type Params struct {
	Nodes     int   // n
	OutDegree int   // F: average out-degree; per-node degree ~ U{0..2F}
	Locality  int   // l: arcs from i restricted to [i+1, min(i+l, n)]
	Seed      int64 // generator seed; fixed seeds make runs reproducible
}

func (p Params) String() string {
	return fmt.Sprintf("n=%d F=%d l=%d seed=%d", p.Nodes, p.OutDegree, p.Locality, p.Seed)
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Nodes < 1 {
		return fmt.Errorf("graphgen: need at least one node, got %d", p.Nodes)
	}
	if p.OutDegree < 0 {
		return fmt.Errorf("graphgen: negative out-degree %d", p.OutDegree)
	}
	if p.Locality < 1 {
		return fmt.Errorf("graphgen: locality must be at least 1, got %d", p.Locality)
	}
	return nil
}

// Generate produces the arc list of one synthetic DAG.
func Generate(p Params) ([]graph.Arc, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	var arcs []graph.Arc
	seen := map[graph.Arc]bool{}
	for i := 1; i <= p.Nodes; i++ {
		hi := i + p.Locality
		if hi > p.Nodes {
			hi = p.Nodes
		}
		span := hi - i // number of admissible targets
		if span == 0 {
			continue
		}
		deg := rng.Intn(2*p.OutDegree + 1)
		for k := 0; k < deg; k++ {
			a := graph.Arc{From: int32(i), To: int32(i + 1 + rng.Intn(span))}
			if !seen[a] {
				seen[a] = true
				arcs = append(arcs, a)
			}
		}
	}
	return arcs, nil
}

// GenerateGraph produces the in-memory graph directly.
func GenerateGraph(p Params) (*graph.Graph, error) {
	arcs, err := Generate(p)
	if err != nil {
		return nil, err
	}
	return graph.New(p.Nodes, arcs), nil
}

// Tuples converts arcs to relation tuples (source as the clustering key).
func Tuples(arcs []graph.Arc) []relation.Tuple {
	ts := make([]relation.Tuple, len(arcs))
	for i, a := range arcs {
		ts[i] = relation.Tuple{Key: a.From, Val: a.To}
	}
	return ts
}

// SourceSet draws s distinct source nodes uniformly from 1..n, sorted
// ascending, for the selection queries of Section 5.2.
func SourceSet(n, s int, seed int64) []int32 {
	if s > n {
		s = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:s]
	out := make([]int32, s)
	for i, v := range perm {
		out[i] = int32(v + 1)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
