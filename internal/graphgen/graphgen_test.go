package graphgen

import (
	"testing"
	"testing/quick"

	"tcstudy/internal/graph"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{Nodes: 0, OutDegree: 2, Locality: 10},
		{Nodes: 10, OutDegree: -1, Locality: 10},
		{Nodes: 10, OutDegree: 2, Locality: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("params %v accepted", p)
		}
		if _, err := Generate(p); err == nil {
			t.Fatalf("Generate accepted %v", p)
		}
	}
	good := Params{Nodes: 10, OutDegree: 2, Locality: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := Params{Nodes: 100, OutDegree: 5, Locality: 20, Seed: 42}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(p)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic arc count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arc %d differs", i)
		}
	}
	p.Seed = 43
	c, _ := Generate(p)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestArcsRespectLocalityAndAcyclicity(t *testing.T) {
	prop := func(seed int64) bool {
		p := Params{Nodes: 200, OutDegree: 4, Locality: 15, Seed: seed}
		arcs, err := Generate(p)
		if err != nil {
			return false
		}
		seen := map[graph.Arc]bool{}
		for _, a := range arcs {
			if a.To <= a.From { // forward arcs only: DAG by construction
				return false
			}
			if int(a.To-a.From) > p.Locality {
				return false
			}
			if a.To > int32(p.Nodes) {
				return false
			}
			if seen[a] { // duplicates eliminated
				return false
			}
			seen[a] = true
		}
		g := graph.New(p.Nodes, arcs)
		_, err = g.TopoSort()
		return err == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAverageOutDegreeNearF(t *testing.T) {
	p := Params{Nodes: 5000, OutDegree: 5, Locality: 2000, Seed: 7}
	arcs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(len(arcs)) / float64(p.Nodes)
	// Degrees are U{0..2F} with mean F, minus dedup/locality losses; with a
	// wide locality the loss is small.
	if avg < 4.0 || avg > 5.5 {
		t.Fatalf("average out-degree = %v, want near 5", avg)
	}
}

func TestLocalityBoundsOutDegree(t *testing.T) {
	// Paper footnote 1 / graph G10: F=50, l=20 means at most 20 distinct
	// targets per node, so |G| is well below n*F.
	p := Params{Nodes: 2000, OutDegree: 50, Locality: 20, Seed: 1}
	arcs, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(arcs) > 2000*20 {
		t.Fatalf("|G| = %d exceeds locality bound", len(arcs))
	}
	perNode := map[int32]int{}
	for _, a := range arcs {
		perNode[a.From]++
		if perNode[a.From] > 20 {
			t.Fatalf("node %d has out-degree > locality", a.From)
		}
	}
}

func TestGenerateGraphAndTuples(t *testing.T) {
	p := Params{Nodes: 50, OutDegree: 3, Locality: 10, Seed: 9}
	g, err := GenerateGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	arcs, _ := Generate(p)
	if g.NumArcs() != len(arcs) {
		t.Fatalf("graph arcs %d != generated %d", g.NumArcs(), len(arcs))
	}
	ts := Tuples(arcs)
	if len(ts) != len(arcs) {
		t.Fatal("Tuples changed length")
	}
	for i := range ts {
		if ts[i].Key != arcs[i].From || ts[i].Val != arcs[i].To {
			t.Fatal("Tuples mismatch")
		}
	}
}

func TestSourceSet(t *testing.T) {
	s := SourceSet(100, 10, 3)
	if len(s) != 10 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[int32]bool{}
	for i, v := range s {
		if v < 1 || v > 100 {
			t.Fatalf("source %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate source %d", v)
		}
		seen[v] = true
		if i > 0 && s[i-1] >= v {
			t.Fatal("sources not sorted")
		}
	}
	// Requesting more sources than nodes clamps.
	all := SourceSet(5, 10, 1)
	if len(all) != 5 {
		t.Fatalf("clamped len = %d, want 5", len(all))
	}
}

func TestStudyScaleFamilies(t *testing.T) {
	// Sanity-check the paper's qualitative Table 2 trends at study scale:
	// fixing F, lower locality gives deeper graphs (larger max level).
	deep, _ := GenerateGraph(Params{Nodes: 2000, OutDegree: 5, Locality: 20, Seed: 5})
	shallow, _ := GenerateGraph(Params{Nodes: 2000, OutDegree: 5, Locality: 2000, Seed: 5})
	ld, err := deep.Levels()
	if err != nil {
		t.Fatal(err)
	}
	ls, err := shallow.Levels()
	if err != nil {
		t.Fatal(err)
	}
	maxOf := func(lv []int32) int32 {
		var m int32
		for _, v := range lv {
			if v > m {
				m = v
			}
		}
		return m
	}
	if maxOf(ld) <= maxOf(ls) {
		t.Fatalf("locality 20 max level %d <= locality 2000 max level %d",
			maxOf(ld), maxOf(ls))
	}
}
