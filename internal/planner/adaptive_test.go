package planner

import (
	"fmt"
	"math"
	"testing"
	"time"

	"tcstudy/internal/core"
	"tcstudy/internal/graph"
)

// renderRanking serializes a ranking to a canonical string so equality
// checks are byte-for-byte, not just order-of-winner.
func renderRanking(algs []core.Algorithm, ios []float64) string {
	s := ""
	for i := range algs {
		s += fmt.Sprintf("%s io=%.6f\n", algs[i], ios[i])
	}
	return s
}

func staticRendered(p Profile, numSources, m int) string {
	ests := Estimates(p, numSources, m)
	algs := make([]core.Algorithm, len(ests))
	ios := make([]float64, len(ests))
	for i, e := range ests {
		algs[i], ios[i] = e.Alg, e.IO
	}
	return renderRanking(algs, ios)
}

func adaptiveRendered(a *Adaptive, p Profile, numSources, m int) string {
	ds := a.Rank(p, numSources, m)
	algs := make([]core.Algorithm, len(ds))
	ios := make([]float64, len(ds))
	for i, d := range ds {
		algs[i], ios[i] = d.Alg, d.Blended
	}
	return renderRanking(algs, ios)
}

// With exploration off and zero observations, the adaptive ranking must be
// byte-identical to the static ranking: same algorithms, same order, same
// scores (blended == static estimate).
func TestAdaptiveColdMatchesStatic(t *testing.T) {
	_, _, p := study(t, 400, 4, 60)
	a := NewAdaptive(Config{}) // Epsilon defaults to 0
	for _, numSources := range []int{0, 1, 5, 40} {
		for _, m := range []int{10, 50} {
			static := staticRendered(p, numSources, m)
			adaptive := adaptiveRendered(a, p, numSources, m)
			if static != adaptive {
				t.Fatalf("cold adaptive ranking diverges from static (sources=%d m=%d):\nstatic:\n%s\nadaptive:\n%s",
					numSources, m, static, adaptive)
			}
		}
	}
	if st := a.Stats(); st.Decisions != 0 || st.Observations != 0 || st.Explorations != 0 {
		t.Fatalf("ranking alone must not advance counters: %+v", st)
	}
}

// Seeded observations favoring an algorithm the static model ranks lower
// must flip the blended winner, and the hit-rate-backing counters must
// advance with every observation.
func TestSeededObservationsFlipWinner(t *testing.T) {
	_, _, p := study(t, 400, 4, 60)
	a := NewAdaptive(Config{})
	staticEsts := Estimates(p, 1, 10)
	winner := staticEsts[0].Alg
	// Pick the statically worst candidate and feed evidence that it is in
	// fact nearly free, while every other candidate measures expensive —
	// the workload every exploration pass eventually produces.
	underdog := staticEsts[len(staticEsts)-1].Alg
	var fed int64
	for i := 0; i < 12; i++ {
		for _, e := range staticEsts {
			if e.Alg == underdog {
				a.Observe(p, 1, 10, underdog, time.Millisecond, 1)
			} else {
				a.Observe(p, 1, 10, e.Alg, 500*time.Millisecond, 5000)
			}
			fed++
		}
	}
	ds := a.Rank(p, 1, 10)
	if ds[0].Alg != underdog {
		t.Fatalf("observations did not flip the winner: got %s, want %s\n(static winner %s)",
			ds[0].Alg, underdog, winner)
	}
	if ds[0].Samples <= 0 || ds[0].ObsIO <= 0 {
		t.Fatalf("winning decision carries no evidence: %+v", ds[0])
	}
	st := a.Stats()
	if st.Observations != fed || st.Decisions != fed {
		t.Fatalf("counters did not advance with observations (fed %d): %+v", fed, st)
	}
	if st.Hits == 0 || st.HitRate <= 0 || st.HitRate > 1 {
		t.Fatalf("hit-rate counters degenerate: %+v", st)
	}
}

// Observations for one query shape must not leak into another shape's
// ranking: single-source evidence leaves the full-closure ranking static.
func TestShapeBucketsAreIsolated(t *testing.T) {
	_, _, p := study(t, 400, 4, 60)
	a := NewAdaptive(Config{})
	full := staticRendered(p, 0, 10)
	worst := Estimates(p, 1, 10)
	underdog := worst[len(worst)-1].Alg
	for i := 0; i < 20; i++ {
		a.Observe(p, 1, 10, underdog, time.Millisecond, 1)
	}
	if got := adaptiveRendered(a, p, 0, 10); got != full {
		t.Fatalf("single-source observations altered the full-closure ranking:\nwant:\n%s\ngot:\n%s", full, got)
	}
}

// With Epsilon=1 every Rank call must promote the least-observed candidate
// to the front, mark it Explored, and count the exploration.
func TestExplorationPromotesColdCandidate(t *testing.T) {
	_, _, p := study(t, 400, 4, 60)
	a := NewAdaptive(Config{Epsilon: 1, Seed: 3})
	// Warm every candidate except the statically worst, so exactly one
	// stays cold and sits away from the front of the blended ranking —
	// forcing the promotion to actually move it.
	ests := Estimates(p, 1, 10)
	cold := ests[len(ests)-1].Alg
	for _, e := range ests[:len(ests)-1] {
		a.Observe(p, 1, 10, e.Alg, 10*time.Millisecond, 100)
	}
	ds := a.Rank(p, 1, 10)
	if ds[0].Alg != cold {
		t.Fatalf("epsilon=1 did not promote the cold candidate %s to the front: got %s", cold, ds[0].Alg)
	}
	if !ds[0].Explored {
		t.Fatalf("promoted candidate not marked Explored: %+v", ds[0])
	}
	if ds[0].Samples != 0 {
		t.Fatalf("promoted candidate is not the least-observed: %+v", ds[0])
	}
	if st := a.Stats(); st.Explorations == 0 {
		t.Fatalf("epsilon=1 never counted an exploration: %+v", st)
	}
}

// Decay must let fresh evidence overtake stale evidence: after a burst of
// slow observations followed by many fast ones, the cell's decayed mean
// approaches the fresh value.
func TestDecayForgetsStaleEvidence(t *testing.T) {
	_, _, p := study(t, 400, 4, 60)
	a := NewAdaptive(Config{Decay: 0.5})
	alg := core.BTC
	for i := 0; i < 10; i++ {
		a.Observe(p, 1, 10, alg, time.Second, 10000)
	}
	for i := 0; i < 10; i++ {
		a.Observe(p, 1, 10, alg, time.Millisecond, 10)
	}
	var d *Decision
	for _, cand := range a.Rank(p, 1, 10) {
		if cand.Alg == alg {
			c := cand
			d = &c
		}
	}
	if d == nil {
		t.Fatal("BTC missing from ranking")
	}
	if d.ObsIO > 100 {
		t.Fatalf("decayed page-I/O mean %v still dominated by stale burst (want near 10)", d.ObsIO)
	}
	if d.ObsLatency > 100*time.Millisecond {
		t.Fatalf("decayed latency mean %v still dominated by stale burst", d.ObsLatency)
	}
}

// A zero-arc graph must profile without NaN and rank every candidate at
// zero estimated work — the /v1/plan regression this package guards.
func TestZeroArcGraphEstimates(t *testing.T) {
	g := graph.New(50, nil)
	p, err := BuildProfile(g, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 50 || p.Arcs != 0 {
		t.Fatalf("profile counts wrong: %+v", p)
	}
	for name, v := range map[string]float64{
		"H": p.H, "W": p.W, "AvgDegree": p.AvgDegree,
		"Reach": p.Reach, "Density": p.Density,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("profile field %s is %v on a zero-arc graph: %+v", name, v, p)
		}
	}
	for _, numSources := range []int{0, 1, 3} {
		ests := Estimates(p, numSources, 10)
		if len(ests) == 0 {
			t.Fatal("zero-arc graph produced no candidates")
		}
		sawBITM, sawBTC := false, false
		for _, e := range ests {
			if e.IO != 0 {
				t.Fatalf("zero-arc estimate for %s is %v, want 0 work", e.Alg, e.IO)
			}
			if e.Why == "" {
				t.Fatalf("zero-arc estimate for %s has no rationale", e.Alg)
			}
			sawBITM = sawBITM || e.Alg == core.BITM
			sawBTC = sawBTC || e.Alg == core.BTC
		}
		if !sawBITM || !sawBTC {
			t.Fatalf("zero-arc ranking must still list BITM and BTC: %+v", ests)
		}
	}
	// The adaptive path must survive the same degenerate profile.
	a := NewAdaptive(Config{})
	a.Observe(p, 1, 10, core.SRCH, time.Millisecond, 0)
	if ds := a.Rank(p, 1, 10); len(ds) == 0 {
		t.Fatal("adaptive ranking empty on zero-arc graph")
	}
}

// An empty node space must not panic profile construction.
func TestZeroNodeGraphProfile(t *testing.T) {
	g := graph.New(0, nil)
	p, err := BuildProfile(g, 4, 1)
	if err != nil {
		// An explicit error is acceptable; a panic is not (this test's
		// point is surviving rand.Intn(0)).
		return
	}
	if p.N != 0 || p.Arcs != 0 {
		t.Fatalf("unexpected profile for empty graph: %+v", p)
	}
}
