package planner

import (
	"math/rand"
	"sync"
	"time"

	"tcstudy/internal/core"
)

// Adaptive closes the loop the static cost models leave open: the models
// rank candidates from cheap statistics, but the paper's own Fig. 8 shows
// no algorithm wins everywhere, and a serving process sees ground truth on
// every executed query — the same phase deltas that populate the
// tc_engine_phase_seconds histograms. The adaptive planner folds those
// observations into an exponentially-decayed per-(query shape, algorithm)
// store and blends them with the static estimate: a cold store ranks
// exactly like the static model, and evidence takes over smoothly as
// observations accumulate. An epsilon-greedy exploration floor keeps cold
// algorithms sampled so the store cannot starve a candidate that would win
// under the current workload.

// Config tunes the adaptive planner. Zero values select the defaults.
type Config struct {
	// Decay is the multiplicative weight applied to the existing
	// observation mass each time a new observation for the same
	// (shape, algorithm) cell arrives; smaller values forget faster
	// (default 0.9, i.e. the last ~10 observations dominate).
	Decay float64
	// Epsilon is the exploration probability: with probability Epsilon a
	// Rank call promotes the least-observed candidate to the front so cold
	// algorithms keep getting sampled (default 0 — exploration off, which
	// keeps rankings deterministic unless explicitly enabled).
	Epsilon float64
	// Confidence is the observation mass at which the blend weights
	// evidence and model equally; below it the static estimate dominates
	// (default 4 observations).
	Confidence float64
	// LatencyWeight converts observed latency into page-I/O-equivalent
	// cost units so the blended score stays commensurate with the static
	// estimates. The default, 400 pages/second, is the sequential page
	// rate the engine's EstimatedIOTime model assumes (~2.5ms per page).
	LatencyWeight float64
	// Seed feeds the exploration RNG (deterministic for tests).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Decay == 0 {
		c.Decay = 0.9
	}
	if c.Confidence == 0 {
		c.Confidence = 4
	}
	if c.LatencyWeight == 0 {
		c.LatencyWeight = 400
	}
	return c
}

// shape buckets queries whose observations are comparable: the cost of a
// closure over all nodes says little about a single-source probe, so
// observations are pooled per bucket rather than globally.
type shape int

const (
	shapeFull   shape = iota // full closure (no sources)
	shapeSingle              // exactly one source
	shapeFew                 // 2..16 sources
	shapeMany                // more than 16 sources
)

func shapeOf(numSources int) shape {
	switch {
	case numSources == 0:
		return shapeFull
	case numSources == 1:
		return shapeSingle
	case numSources <= 16:
		return shapeFew
	default:
		return shapeMany
	}
}

func (s shape) String() string {
	switch s {
	case shapeFull:
		return "full"
	case shapeSingle:
		return "single"
	case shapeFew:
		return "few"
	default:
		return "many"
	}
}

// obsCell is one (shape, algorithm) cell of the observation store: a
// decayed sample mass and decayed means of latency and page I/O.
type obsCell struct {
	weight  float64 // decayed observation mass
	latency float64 // decayed mean latency, seconds
	pageIO  float64 // decayed mean page I/O
}

type obsKey struct {
	shape shape
	alg   core.Algorithm
}

// Adaptive is an online planner: static model plus observation store.
// All methods are safe for concurrent use.
type Adaptive struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
	obs map[obsKey]*obsCell

	decisions    int64 // observed executions scored against the evidence
	hits         int64 // ...where the blended winner was evidence-fastest
	explorations int64 // Rank calls that promoted a cold candidate
	observations int64 // total observations folded into the store
}

// NewAdaptive builds an empty adaptive planner.
func NewAdaptive(cfg Config) *Adaptive {
	cfg = cfg.withDefaults()
	return &Adaptive{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		obs: make(map[obsKey]*obsCell),
	}
}

// Decision is one ranked candidate: the static estimate plus the evidence
// that produced its blended score.
type Decision struct {
	Estimate
	// Blended is the score the ranking sorts by: the static estimate and
	// the observed cost, weighted by how much evidence the store holds.
	// With zero observations it equals the static estimate exactly.
	Blended float64
	// Samples is the decayed observation mass behind the blend (0 = cold).
	Samples float64
	// ObsLatency and ObsIO are the decayed means of the cell (zero when
	// cold).
	ObsLatency time.Duration
	ObsIO      float64
	// Explored marks the candidate an epsilon-greedy promotion moved to
	// the front ahead of its blended rank.
	Explored bool
}

// Stats is the planner's rolling decision record.
type Stats struct {
	// Decisions counts executed queries whose algorithm choice was scored
	// against the observed evidence; Hits counts those where the blended
	// winner matched the evidence-fastest algorithm for the query's shape.
	// HitRate is Hits/Decisions (0 before any decision).
	Decisions    int64
	Hits         int64
	HitRate      float64
	Explorations int64
	Observations int64
}

// blendLocked computes the blended score and evidence fields for one
// static estimate. Caller holds a.mu.
func (a *Adaptive) blendLocked(sh shape, e Estimate) Decision {
	d := Decision{Estimate: e, Blended: e.IO}
	cell, ok := a.obs[obsKey{sh, e.Alg}]
	if !ok || cell.weight <= 0 {
		return d
	}
	obsCost := cell.pageIO + cell.latency*a.cfg.LatencyWeight
	w := cell.weight / (cell.weight + a.cfg.Confidence)
	d.Blended = (1-w)*e.IO + w*obsCost
	d.Samples = cell.weight
	d.ObsLatency = time.Duration(cell.latency * float64(time.Second))
	d.ObsIO = cell.pageIO
	return d
}

// rankLocked produces the blended ranking without exploration. The sort is
// stable over the static order, so with zero observations (every blended
// score equal to its static estimate) the result is exactly the static
// ranking. Caller holds a.mu.
func (a *Adaptive) rankLocked(p Profile, numSources, bufferPages int) []Decision {
	sh := shapeOf(numSources)
	ests := Estimates(p, numSources, bufferPages)
	ds := make([]Decision, len(ests))
	for i, e := range ests {
		ds[i] = a.blendLocked(sh, e)
	}
	// Insertion sort, stable on Blended: candidate lists are tiny (≤8).
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Blended < ds[j-1].Blended; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds
}

// Rank returns the blended ranking, cheapest first. With probability
// Epsilon the least-observed candidate is promoted to the front (marked
// Explored) so cold algorithms keep getting sampled.
func (a *Adaptive) Rank(p Profile, numSources, bufferPages int) []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	ds := a.rankLocked(p, numSources, bufferPages)
	if a.cfg.Epsilon > 0 && len(ds) > 1 && a.rng.Float64() < a.cfg.Epsilon {
		cold := 0
		for i := 1; i < len(ds); i++ {
			if ds[i].Samples < ds[cold].Samples {
				cold = i
			}
		}
		if cold != 0 {
			pick := ds[cold]
			copy(ds[1:cold+1], ds[:cold])
			pick.Explored = true
			ds[0] = pick
			a.explorations++
		}
	}
	return ds
}

// Choose returns the top of the blended ranking.
func (a *Adaptive) Choose(p Profile, numSources, bufferPages int) Decision {
	return a.Rank(p, numSources, bufferPages)[0]
}

// Observe folds one executed query into the store: the algorithm that ran,
// the query shape it ran under, and the measured latency and page I/O —
// the same phase deltas the tc_engine_phase_seconds histograms record. It
// also scores the planner: the blended winner for this shape is compared
// against the evidence-fastest observed algorithm, advancing the
// decision/hit counters behind the rolling hit rate.
func (a *Adaptive) Observe(p Profile, numSources, bufferPages int, alg core.Algorithm, latency time.Duration, pageIO int64) {
	sh := shapeOf(numSources)
	a.mu.Lock()
	defer a.mu.Unlock()
	k := obsKey{sh, alg}
	cell, ok := a.obs[k]
	if !ok {
		cell = &obsCell{}
		a.obs[k] = cell
	}
	// Decayed running mean: old mass shrinks by Decay, the new sample
	// enters at weight 1.
	w := cell.weight * a.cfg.Decay
	cell.latency = (cell.latency*w + latency.Seconds()) / (w + 1)
	cell.pageIO = (cell.pageIO*w + float64(pageIO)) / (w + 1)
	cell.weight = w + 1
	a.observations++

	// Score the decision the planner would make right now for this shape
	// against the cheapest observed evidence. Greedy top only — an
	// exploration promotion is deliberately not charged as a miss.
	ds := a.rankLocked(p, numSources, bufferPages)
	pick := ds[0].Alg
	best := alg
	bestCost := 0.0
	first := true
	for key, c := range a.obs {
		if key.shape != sh || c.weight <= 0 {
			continue
		}
		cost := c.pageIO + c.latency*a.cfg.LatencyWeight
		if first || cost < bestCost {
			best, bestCost, first = key.alg, cost, false
		}
	}
	a.decisions++
	if pick == best {
		a.hits++
	}
}

// Stats returns the rolling counters.
func (a *Adaptive) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := Stats{
		Decisions:    a.decisions,
		Hits:         a.hits,
		Explorations: a.explorations,
		Observations: a.observations,
	}
	if s.Decisions > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Decisions)
	}
	return s
}
