// Package planner estimates the page-I/O cost of each transitive closure
// algorithm from cheap graph statistics and ranks the candidates — the
// query-optimizer layer the paper gestures at ("while our model is not
// sophisticated enough to allow a query optimizer to choose…", Section 1)
// built on top of its own findings.
//
// The estimates are heuristic cost models with constants calibrated
// against this repository's full-scale measurements (EXPERIMENTS.md); they
// are built for *ranking* candidates, not for absolute prediction — the
// paper's own Section 7 warns how treacherous absolute I/O prediction is.
// The models consume only statistics obtainable without computing a
// closure: node and arc counts, the rectangle model (one DFS), and a
// sampled reachability estimate.
package planner

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tcstudy/internal/bitmatrix"
	"tcstudy/internal/core"
	"tcstudy/internal/graph"
)

// Profile is the cheap statistical characterization the models consume.
type Profile struct {
	N         int     // nodes
	Arcs      int     // |G|
	H         float64 // rectangle-model height (mean node level)
	W         float64 // rectangle-model width  (|G| / H)
	AvgDegree float64 // |G| / N
	// Reach is the estimated mean number of successors per node, from a
	// BFS sample; with it, closure sizes are estimated without computing
	// any closure.
	Reach float64
	// CondNodes/CondArcs are the SCC condensation's node and distinct arc
	// counts, and Density its |A|/n² — the statistics the bit-matrix
	// kernel's selection threshold consumes. For an acyclic graph
	// CondNodes == N.
	CondNodes int
	CondArcs  int
	Density   float64
}

// BuildProfile computes the profile: one full DFS for the rectangle model
// plus `samples` in-memory reachability probes (both cheap relative to any
// closure computation).
func BuildProfile(g *graph.Graph, samples int, seed int64) (Profile, error) {
	st, err := g.RectangleModel()
	if err != nil {
		return Profile{}, err
	}
	p := Profile{
		N:    g.N(),
		Arcs: g.NumArcs(),
		H:    st.H,
		W:    st.W,
	}
	if p.N > 0 {
		p.AvgDegree = float64(p.Arcs) / float64(p.N)
	}
	if samples < 1 {
		samples = 8
	}
	// A graph with no nodes has nothing to sample (and rand.Intn(0)
	// panics); with no arcs every probe would come back empty. Either way
	// Reach is exactly zero, no sampling required.
	if p.N > 0 && p.Arcs > 0 {
		rng := rand.New(rand.NewSource(seed))
		var total int64
		for i := 0; i < samples; i++ {
			src := int32(rng.Intn(p.N) + 1)
			total += int64(g.Reachable([]int32{src}).Count())
		}
		p.Reach = float64(total) / float64(samples)
	}

	// Condensation shape for the bit-matrix threshold: one Tarjan pass plus
	// a distinct-arc count, the same statistics the engine derives before
	// selecting the kernel.
	arcs := g.Arcs()
	comp, k := graph.SCC(p.N, arcs)
	p.CondNodes = k
	seen := make(map[int64]struct{}, len(arcs))
	for _, a := range arcs {
		cu, cv := comp[a.From], comp[a.To]
		if cu == cv {
			continue
		}
		key := int64(cu)<<32 | int64(cv)
		if _, dup := seen[key]; !dup {
			seen[key] = struct{}{}
			p.CondArcs++
		}
	}
	p.Density = bitmatrix.Density(p.CondNodes, p.CondArcs)
	return p, nil
}

// Estimate is one candidate's predicted cost.
type Estimate struct {
	Alg core.Algorithm
	IO  float64
	// Why summarizes the dominant term of the model.
	Why string
}

// storage densities of the engine (entries per 2048-byte page).
const (
	listEntriesPerPage = 450 // successor-list pages
	tuplesPerProbePage = 256 // relation pages
)

// scenario derives the intermediate quantities shared by the models.
type scenario struct {
	p      Profile
	s      int // sources; 0 = full closure
	m      int // buffer pages
	magicN float64
	magicA float64
	tc     float64 // estimated closure tuples over the magic graph
	answer float64 // estimated answer tuples
	churn  float64 // buffer-pressure multiplier
}

func newScenario(p Profile, numSources, bufferPages int) scenario {
	sc := scenario{p: p, s: numSources, m: bufferPages}
	n := float64(p.N)
	if numSources == 0 {
		sc.magicN = n
		sc.answer = n * p.Reach
	} else {
		// Union of s random reach sets, by inclusion-exclusion over
		// independent coverage.
		cover := 1 - math.Pow(1-p.Reach/n, float64(numSources))
		sc.magicN = math.Min(n, n*cover+float64(numSources))
		sc.answer = float64(numSources) * p.Reach
	}
	sc.magicA = sc.magicN * p.AvgDegree
	sc.tc = sc.magicN * p.Reach
	// Buffer pressure: a 10-page pool rereads expanded lists far more
	// than a 50-page pool; calibrated against Table 3 / Figure 13.
	sc.churn = 1 + 24/math.Sqrt(float64(bufferPages))
	return sc
}

// Estimates ranks every applicable algorithm for the given query shape.
func Estimates(p Profile, numSources, bufferPages int) []Estimate {
	if p.Arcs == 0 {
		return emptyGraphEstimates(numSources)
	}
	sc := newScenario(p, numSources, bufferPages)
	ests := []Estimate{
		sc.btc(core.BTC, 1.0),
		sc.btc(core.BJ, 0.95), // single-parent optimization shaves a little
		sc.btc(core.SPN, 1.30),
		sc.jkb2(),
		sc.seminaive(),
		sc.warren(),
	}
	if bitmatrix.Fits(p.CondNodes, p.CondArcs) {
		ests = append(ests, sc.bitm())
	}
	if numSources > 0 {
		ests = append(ests, sc.srch())
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i].IO < ests[j].IO })
	return ests
}

// emptyGraphEstimates is the ranking for a graph with zero arcs: every
// candidate performs zero work (the closure is empty whatever the
// algorithm), so each is listed at zero estimated I/O in the canonical
// candidate order. The models themselves are skipped — several divide by
// shape statistics that are degenerate on an empty relation, and a NaN
// leaking into the ranking (or into Profile.Density via a zero-node
// condensation) would poison the JSON plan response.
func emptyGraphEstimates(numSources int) []Estimate {
	const why = "empty graph: the closure is empty, no page I/O needed"
	ests := []Estimate{
		{Alg: core.BTC, Why: why},
		{Alg: core.BJ, Why: why},
		{Alg: core.SPN, Why: why},
		{Alg: core.JKB2, Why: why},
		{Alg: core.SEMI, Why: why},
		{Alg: core.WARREN, Why: why},
		{Alg: core.BITM, Why: why},
	}
	if numSources > 0 {
		ests = append(ests, Estimate{Alg: core.SRCH, Why: why})
	}
	return ests
}

// Choose returns the cheapest estimate.
func Choose(p Profile, numSources, bufferPages int) Estimate {
	return Estimates(p, numSources, bufferPages)[0]
}

func (sc scenario) btc(alg core.Algorithm, factor float64) Estimate {
	// Restructuring: index probes over the magic graph plus initial list
	// writes; computation: expanded-list traffic proportional to the
	// closure, amplified by buffer pressure.
	restruct := sc.magicN/8 + sc.magicA/listEntriesPerPage
	compute := sc.tc / listEntriesPerPage * sc.churn
	return Estimate{
		Alg: alg,
		IO:  factor * (restruct + compute),
		Why: fmt.Sprintf("expands ~%.0f closure tuples over every magic node", sc.tc),
	}
}

func (sc scenario) bitm() Estimate {
	// The dense-core kernel's only page traffic is the relation scan that
	// builds the condensation; the closure itself runs in memory. Offered
	// only when the condensation passes the kernel's own threshold (the
	// caller gates on bitmatrix.Fits), so the estimate has no regime where
	// it must hedge.
	return Estimate{
		Alg: core.BITM,
		IO:  float64(sc.p.Arcs)/tuplesPerProbePage + 1,
		Why: fmt.Sprintf("in-memory kernel over the %d-node condensed core (density %.3f); one relation scan",
			sc.p.CondNodes, sc.p.Density),
	}
}

func (sc scenario) srch() Estimate {
	// Per source, the search touches the distinct relation pages of the
	// reach window (clustering makes probes of nearby nodes share pages)
	// and writes the result list.
	reachPages := sc.p.Reach * sc.p.AvgDegree / tuplesPerProbePage
	perSource := reachPages + 2*sc.p.Reach/listEntriesPerPage + 2
	return Estimate{
		Alg: core.SRCH,
		IO:  float64(sc.s) * perSource,
		Why: fmt.Sprintf("searches ~%.0f nodes per source, %d sources", sc.p.Reach, sc.s),
	}
}

func (sc scenario) jkb2() Estimate {
	// Dual-representation preprocessing (~2x BTC's restructuring) plus
	// trees bounded by the answer — unless the graph is wide, where the
	// missed markings multiply unions over low-locality arcs (Table 4:
	// the penalty scales with width).
	restruct := 2 * (sc.magicN/8 + sc.magicA/listEntriesPerPage)
	trees := 4 * sc.answer / listEntriesPerPage * sc.churn
	widthPenalty := 1 + 6*sc.p.W/float64(sc.p.N)
	if sc.s == 0 {
		// Full closure: every node special, trees grow to pair-encoded
		// predecessor sets (~2x the closure).
		trees = 2 * 2 * sc.tc / listEntriesPerPage * sc.churn
		widthPenalty = 1
	}
	return Estimate{
		Alg: core.JKB2,
		IO:  restruct + trees*widthPenalty,
		Why: fmt.Sprintf("special-node trees near the answer size (~%.0f), width penalty x%.1f", sc.answer, widthPenalty),
	}
}

func (sc scenario) seminaive() Estimate {
	// Depth iterations, each rescanning and rewriting the accumulated
	// result through an external sort.
	depth := math.Max(1, sc.p.H/2)
	perIter := 3 * sc.answer / 255 // sort + merge traffic over heap pages
	return Estimate{
		Alg: core.SEMI,
		IO:  depth*perIter*0.4 + sc.answer/255,
		Why: fmt.Sprintf("~%.0f delta iterations re-sorting the result", depth),
	}
}

func (sc scenario) warren() Estimate {
	// Fixed: two blocked passes over the n^2-bit matrix, regardless of
	// the query's selectivity.
	rowBytes := float64((sc.p.N+8)/8 + 8)
	pages := float64(sc.p.N) * rowBytes / 2048
	blocks := math.Ceil(pages / math.Max(1, float64(sc.m-3)))
	return Estimate{
		Alg: core.WARREN,
		IO:  pages + 2*blocks*pages*0.33,
		Why: fmt.Sprintf("fixed bit-matrix sweep over %.0f pages, any selectivity", pages),
	}
}
