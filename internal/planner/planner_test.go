package planner

import (
	"fmt"
	"strings"
	"testing"

	"tcstudy/internal/bitmatrix"
	"tcstudy/internal/core"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

func study(t *testing.T, n, f, l int) (*graph.Graph, *core.Database, Profile) {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: n, OutDegree: f, Locality: l, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(n, arcs)
	p, err := BuildProfile(g, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g, core.NewDatabase(n, arcs), p
}

func TestBuildProfile(t *testing.T) {
	g, _, p := study(t, 500, 4, 60)
	if p.N != 500 || p.Arcs != g.NumArcs() {
		t.Fatalf("profile counts wrong: %+v", p)
	}
	if p.H <= 0 || p.W <= 0 || p.AvgDegree <= 0 {
		t.Fatalf("profile shape wrong: %+v", p)
	}
	if p.Reach <= 0 || p.Reach > float64(p.N) {
		t.Fatalf("reach estimate %v out of range", p.Reach)
	}
}

func TestEstimatesCoverCandidates(t *testing.T) {
	_, _, p := study(t, 300, 3, 50)
	full := Estimates(p, 0, 10)
	sel := Estimates(p, 5, 10)
	if len(sel) != len(full)+1 {
		t.Fatalf("selection estimates %d, full %d (SRCH applies only to selections)",
			len(sel), len(full))
	}
	for i := 1; i < len(sel); i++ {
		if sel[i].IO < sel[i-1].IO {
			t.Fatal("estimates not sorted ascending")
		}
	}
	for _, e := range sel {
		if e.IO <= 0 || e.Why == "" {
			t.Fatalf("degenerate estimate %+v", e)
		}
	}
}

// TestPlannerRankingMatchesMeasurement: on clear-cut study scenarios, the
// planner's choice must be (near-)optimal against real measured I/O. This
// is the validation the whole package exists for.
func TestPlannerRankingMatchesMeasurement(t *testing.T) {
	scenarios := []struct {
		name    string
		n, f, l int
		sources int
	}{
		{"narrow-selective", 1000, 5, 10, 3},  // G4-like: SRCH/JKB2 country
		{"narrow-moderate", 1000, 5, 10, 25},  // JKB2 should still win
		{"wide-selective", 1000, 20, 1000, 3}, // shallow wide: SRCH wins
		{"full-closure", 800, 5, 100, 0},      // BTC country
	}
	candidates := func(sel bool) []core.Algorithm {
		algs := []core.Algorithm{core.BTC, core.BJ, core.SPN, core.JKB2, core.SEMI, core.WARREN, core.BITM}
		if sel {
			algs = append(algs, core.SRCH)
		}
		return algs
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			_, db, p := study(t, sc.n, sc.f, sc.l)
			var q core.Query
			if sc.sources > 0 {
				q.Sources = graphgen.SourceSet(sc.n, sc.sources, 3)
			}
			measured := map[core.Algorithm]int64{}
			best := core.Algorithm("")
			var bestIO int64 = 1 << 62
			for _, alg := range candidates(sc.sources > 0) {
				res, err := core.Run(db, alg, q, core.Config{BufferPages: 10})
				if err != nil {
					t.Fatal(err)
				}
				measured[alg] = res.Metrics.TotalIO()
				if measured[alg] < bestIO {
					bestIO, best = measured[alg], alg
				}
			}
			choice := Choose(p, sc.sources, 10)
			got := measured[choice.Alg]
			if got > 3*bestIO && got-bestIO > 300 {
				var detail string
				for alg, io := range measured {
					detail += fmt.Sprintf(" %s=%d", alg, io)
				}
				t.Fatalf("planner chose %s (measured %d), best is %s (%d);%s",
					choice.Alg, got, best, bestIO, detail)
			}
		})
	}
}

// TestPlannerBitMatrixSelection: the bit-matrix estimate must appear
// exactly when the condensation passes the kernel threshold — present and
// winning on small cores, straddling the density gate on mid-sized ones,
// absent above the hard cap.
func TestPlannerBitMatrixSelection(t *testing.T) {
	hasBITM := func(p Profile) bool {
		for _, e := range Estimates(p, 0, 10) {
			if e.Alg == core.BITM {
				return true
			}
		}
		return false
	}

	// A real small graph: condensation fits (n <= SmallN) and the single
	// relation scan beats every list algorithm's full-closure estimate.
	_, _, p := study(t, 300, 3, 50)
	if p.CondNodes == 0 || p.CondArcs == 0 || p.Density <= 0 {
		t.Fatalf("profile missing condensation stats: %+v", p)
	}
	if !hasBITM(p) {
		t.Fatal("bit-matrix estimate missing for a 300-node core")
	}
	if got := Choose(p, 0, 10); got.Alg != core.BITM {
		t.Fatalf("full closure on a small core chose %s, want bitmatrix", got.Alg)
	}

	// Mid-sized cores straddling the density gate: same node count, arc
	// counts one notch above and below MinDensity.
	n := 1000
	atGate := int(bitmatrix.MinDensity * float64(n) * float64(n))
	dense := Profile{N: n, Arcs: atGate, AvgDegree: float64(atGate) / float64(n),
		H: 50, W: 400, Reach: 500, CondNodes: n, CondArcs: atGate,
		Density: bitmatrix.Density(n, atGate)}
	sparse := dense
	sparse.Arcs = atGate - n
	sparse.CondArcs = atGate - n
	sparse.Density = bitmatrix.Density(n, sparse.CondArcs)
	if !hasBITM(dense) {
		t.Errorf("core at the density gate (%d nodes, %d arcs) not offered the kernel", n, atGate)
	}
	if hasBITM(sparse) {
		t.Errorf("core below the density gate (%d nodes, %d arcs) offered the kernel", n, sparse.CondArcs)
	}

	// Above the hard cap the kernel is never offered, however dense.
	huge := Profile{N: bitmatrix.MaxNodes + 1, CondNodes: bitmatrix.MaxNodes + 1,
		CondArcs: (bitmatrix.MaxNodes + 1) * 100, H: 10, W: 800, Reach: 4000,
		AvgDegree: 100, Arcs: (bitmatrix.MaxNodes + 1) * 100}
	huge.Density = bitmatrix.Density(huge.CondNodes, huge.CondArcs)
	if hasBITM(huge) {
		t.Error("core above MaxNodes offered the kernel")
	}
}

// TestPlannerSelectivityCrossover: as s grows the planner must migrate
// away from SRCH, mirroring Figure 8.
func TestPlannerSelectivityCrossover(t *testing.T) {
	_, _, p := study(t, 1000, 5, 100)
	small := Choose(p, 2, 10)
	if small.Alg != core.SRCH {
		t.Fatalf("s=2 choice = %s, want srch", small.Alg)
	}
	large := Choose(p, 800, 10)
	if large.Alg == core.SRCH {
		t.Fatal("s=800 still chooses srch")
	}
}

// TestPlannerWidthEffect: widening the graph must worsen JKB2's estimate
// relative to BTC (Table 4's conclusion, encoded in the model).
func TestPlannerWidthEffect(t *testing.T) {
	narrow := Profile{N: 2000, Arcs: 9000, H: 280, W: 32, AvgDegree: 4.5, Reach: 800}
	wide := Profile{N: 2000, Arcs: 90000, H: 200, W: 450, AvgDegree: 45, Reach: 800}
	ratio := func(p Profile) float64 {
		var jkb2, btc float64
		for _, e := range Estimates(p, 10, 10) {
			switch e.Alg {
			case core.JKB2:
				jkb2 = e.IO
			case core.BTC:
				btc = e.IO
			}
		}
		return jkb2 / btc
	}
	if ratio(wide) <= ratio(narrow) {
		t.Fatalf("width did not penalize JKB2: narrow %v, wide %v",
			ratio(narrow), ratio(wide))
	}
}

// TestWarrenEstimateSelectivityBlind: Warren's estimate must not improve
// with selectivity.
func TestWarrenEstimateSelectivityBlind(t *testing.T) {
	_, _, p := study(t, 600, 4, 80)
	warrenIO := func(s int) float64 {
		for _, e := range Estimates(p, s, 10) {
			if e.Alg == core.WARREN {
				return e.IO
			}
		}
		t.Fatal("warren missing")
		return 0
	}
	if warrenIO(2) != warrenIO(300) {
		t.Fatal("Warren estimate depends on selectivity")
	}
}

// TestEstimateWhyMentionsDominantTerm: the Why strings carry the model's
// dominant quantity, so tcquery -plan output is self-explanatory.
func TestEstimateWhyMentionsDominantTerm(t *testing.T) {
	_, _, p := study(t, 300, 3, 50)
	for _, e := range Estimates(p, 5, 10) {
		switch e.Alg {
		case core.SRCH:
			if !strings.Contains(e.Why, "source") {
				t.Errorf("srch why = %q", e.Why)
			}
		case core.WARREN:
			if !strings.Contains(e.Why, "matrix") {
				t.Errorf("warren why = %q", e.Why)
			}
		case core.SEMI:
			if !strings.Contains(e.Why, "iteration") {
				t.Errorf("seminaive why = %q", e.Why)
			}
		}
	}
}

// TestChooseEqualsFirstEstimate: Choose is the argmin of Estimates.
func TestChooseEqualsFirstEstimate(t *testing.T) {
	_, _, p := study(t, 300, 3, 50)
	for _, s := range []int{0, 3, 100} {
		ests := Estimates(p, s, 10)
		if got := Choose(p, s, 10); got.Alg != ests[0].Alg {
			t.Fatalf("Choose(%d) = %s, Estimates[0] = %s", s, got.Alg, ests[0].Alg)
		}
	}
}
