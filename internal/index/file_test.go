package index

import (
	"bytes"
	"hash/crc32"
	"path/filepath"
	"strings"
	"testing"

	"tcstudy/internal/faultdisk"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: 300, OutDegree: 4, Locality: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return graph.New(300, arcs)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := testGraph(t)
	x := mustBuild(t, g)
	path := filepath.Join(t.TempDir(), "g.idx")
	if err := x.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	y, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if y.N() != x.N() || y.NumArcs() != x.NumArcs() || y.Stale() != x.Stale() {
		t.Fatalf("shape changed: n %d->%d arcs %d->%d", x.N(), y.N(), x.NumArcs(), y.NumArcs())
	}
	for u := int32(1); u <= int32(g.N()); u += 7 {
		for v := int32(1); v <= int32(g.N()); v += 3 {
			if x.Reach(u, v) != y.Reach(u, v) {
				t.Fatalf("Reach(%d,%d) changed across save/load", u, v)
			}
		}
	}
	// The loaded index keeps full functionality: inserts and stats work.
	if err := y.InsertArc(1, int32(g.N())); err != nil && err != ErrStale {
		t.Fatal(err)
	}
	if st := y.ComputeStats(); st.Nodes != g.N() {
		t.Fatalf("stats after load: %+v", st)
	}
}

func TestSaveLoadPreservesStaleAndSelfLoops(t *testing.T) {
	g := graph.New(3, []graph.Arc{{From: 1, To: 2}, {From: 3, To: 3}})
	x := mustBuild(t, g)
	if err := x.InsertArc(2, 1); err != ErrStale {
		t.Fatalf("expected ErrStale, got %v", err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !y.Stale() {
		t.Fatal("stale flag lost across save/load")
	}
	if !y.Reach(3, 3) || y.Reach(1, 1) {
		t.Fatal("self-loop bitset lost across save/load")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	x := mustBuild(t, testGraph(t))
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Every strict prefix must be rejected; probe a spread of cut points
	// including the section boundaries near the start and end.
	for _, cut := range []int{0, 3, 4, 8, 16, 40, len(whole) / 2, len(whole) - 5, len(whole) - 1} {
		if cut >= len(whole) {
			continue
		}
		if _, err := Load(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", cut, len(whole))
		}
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	x := mustBuild(t, testGraph(t))
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, off := range []int{0, 5, 9, 20, len(whole) / 3, len(whole) / 2, len(whole) - 2} {
		mut := append([]byte(nil), whole...)
		mut[off] ^= 0x10
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d accepted", off)
		}
	}
}

func TestLoadRejectsWrongMagicAndVersion(t *testing.T) {
	x := mustBuild(t, testGraph(t))
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), buf.Bytes()...)
	copy(bad, "NOPE")
	if _, err := Load(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("wrong magic: %v", err)
	}
	// A version bump alone also breaks the checksum; rewriting the CRC is
	// what a forward-incompatible writer would do, and the version check
	// must still reject it.
	bad = append([]byte(nil), buf.Bytes()...)
	bad[4] = 99
	bad = refreshCRC(bad)
	if _, err := Load(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: %v", err)
	}
}

func TestLoadRejectsOversizedHeader(t *testing.T) {
	x := mustBuild(t, graph.New(2, []graph.Arc{{From: 1, To: 2}}))
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Claim a huge node count: the loader must refuse before allocating.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0x7f
	bad = refreshCRC(bad)
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized header accepted")
	}
}

// refreshCRC recomputes the trailer so structural checks past the checksum
// can be exercised.
func refreshCRC(b []byte) []byte {
	body := b[:len(b)-4]
	return le32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

// TestLoadRejectsTornWrite simulates the crash-mid-save failure mode with
// the fault-injection TornWriter: the writer acknowledges every byte but
// persists only a budget-limited prefix — exactly what a torn page or a
// lying disk cache produces. Every such prefix must fail to load.
func TestLoadRejectsTornWrite(t *testing.T) {
	x := mustBuild(t, testGraph(t))
	var whole bytes.Buffer
	if err := x.Save(&whole); err != nil {
		t.Fatal(err)
	}
	full := int64(whole.Len())
	for _, budget := range []int64{0, 7, 64, full / 3, full / 2, full - 1} {
		var torn bytes.Buffer
		if err := x.Save(&faultdisk.TornWriter{W: &torn, Budget: budget}); err != nil {
			t.Fatalf("budget %d: Save saw the tear: %v", budget, err)
		}
		if int64(torn.Len()) != budget {
			t.Fatalf("budget %d: %d bytes persisted", budget, torn.Len())
		}
		if _, err := Load(bytes.NewReader(torn.Bytes())); err == nil {
			t.Fatalf("torn write at %d of %d bytes loaded successfully", budget, full)
		}
	}
}
