package index

// The Kritikakis–Tollis practical DAG decomposition (PAPERS.md: "Fast and
// Practical DAG Decomposition with Reachability Applications",
// arXiv:2212.03945; "Parameterized Linear Time Transitive Closure",
// arXiv:2404.17954). Where the greedy builder appends each node to a chain
// whose tail is a direct parent — so chains are arc-paths and the chain
// count k tracks how often the topological sweep fails to find a parent
// tail — the KT builder drives k toward the DAG's width in two phases:
//
//  1. Node-order heuristic: a topological sweep extracts vertex-disjoint
//     paths by following an unassigned child each step (the child earliest
//     in the topological order, for determinism), concatenating as far as
//     the arc structure allows.
//  2. Path-concatenation reduction: two chains are merged whenever the
//     tail of one *reaches* the head of the other — not necessarily by an
//     arc. The chain invariant the labels rely on ("reaching position p
//     implies reaching every position > p") only needs each element to
//     reach its successor, so reachability-linked concatenations are as
//     good as arc paths, and the TCIX file format carries them unchanged.
//
// Label construction follows the parameterized-linear-time formulation:
// per chain c, one reverse-topological sweep computes min-position(v, c)
// for every node v in O(n+m), giving O(k(n+m)) total — and the per-chain
// sweeps are independent, so they fan out across a bounded worker pool
// (the same shape as core's PR4 source-partitioning pool). The merge
// phase's gating reachability checks ride the same pool: the preliminary
// sweep over the phase-1 chains answers "does tail(A) reach head(B)?" as
// "is min-position(tail(A), B) == 0?", because a chain's head sits at
// position 0.
//
// The output is deterministic for a given graph regardless of
// Parallelism: workers fill disjoint rows of a batch matrix that is
// consumed in fixed chain order, and the greedy linking pass is serial.

import (
	"fmt"
	"sort"

	"tcstudy/internal/bitset"
	"tcstudy/internal/graph"
)

// KTOptions configure BuildKT.
type KTOptions struct {
	// Parallelism bounds the worker pool for the per-chain label sweeps
	// and the merge-gating reachability checks. Values below 1 mean
	// serial. The result is identical at every setting.
	Parallelism int
}

// rowBatchSize bounds the per-batch scratch to batch × (K+1) int32s while
// giving the pool enough independent rows to keep every worker busy.
const rowBatchSize = 64

// BuildKT constructs the index for g with the Kritikakis–Tollis
// decomposition. The resulting index answers exactly like Build's — same
// labels semantics, same file format, same incremental maintenance — but
// with fewer chains on graphs wider than they are deep, which shrinks
// every label and the saved file with it.
func BuildKT(g *graph.Graph, opt KTOptions) (*Index, error) {
	par := opt.Parallelism
	if par < 1 {
		par = 1
	}
	n := g.N()
	cond := g.Condense()
	dag := cond.DAG
	k := dag.N()
	order, err := dag.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("index: condensation not acyclic: %w", err)
	}

	x := &Index{
		n:        n,
		numArcs:  g.NumArcs(),
		builder:  BuilderKT,
		comp:     cond.Component,
		members:  cond.Members,
		chainID:  make([]int32, k+1),
		chainPos: make([]int32, k+1),
		labels:   make([]label, k+1),
		selfLoop: bitset.New(n + 1),
	}
	for v := int32(1); v <= int32(n); v++ {
		if hasArc(g.Children(v), v) {
			x.selfLoop.Add(v)
		}
	}

	// Phase 1 — node-order path heuristic: the same topological sweep the
	// greedy builder runs, appending each node to a chain whose current
	// tail is one of its parents and opening a new chain otherwise. Using
	// the greedy cover as the starting partition makes phase 2 a strict
	// coarsening of the greedy decomposition: every merged chain is a
	// concatenation of greedy chains, so no label can gain entries and
	// both k and the serialized size only move down. Chain ids come out
	// in topological order of their heads.
	rev := make([][]int32, k+1)
	for _, a := range dag.Arcs() {
		rev[a.To] = append(rev[a.To], a.From)
	}
	initID := make([]int32, k+1)
	initPos := make([]int32, k+1)
	for i := range initID {
		initID[i] = -1
	}
	var tails []int32 // per initial chain, its current tail DAG node
	for _, v := range order {
		placed := false
		for _, p := range rev[v] {
			c := initID[p]
			if c >= 0 && tails[c] == p {
				initID[v] = c
				initPos[v] = initPos[p] + 1
				tails[c] = v
				placed = true
				break
			}
		}
		if !placed {
			initID[v] = int32(len(tails))
			initPos[v] = 0
			tails = append(tails, v)
		}
	}
	k0 := len(tails)

	// Phase 2 — concatenation reduction. A preliminary per-chain sweep
	// over the phase-1 chains gates the merges: chain B's head is
	// reachable from chain A's tail iff the tail's min position on B is 0.
	// Candidate lists are gathered per chain A (in ascending candidate
	// chain id, which is ascending head topological position) by parallel
	// workers; the linking pass itself is serial so the result does not
	// depend on worker scheduling. Link cycles are impossible: every link
	// follows DAG reachability.
	//
	// Linking is a maximum bipartite matching of chain tails to chain
	// heads. Maximality minimizes the final chain count, and the order in
	// which tails enter the matching minimizes label size: every node
	// reaching any position of chain A also reaches A's tail and hence
	// everything A links to, so a link out of A deletes exactly
	// ancestors(A) label entries — chains with the most ancestors link
	// first, and Kuhn augmentation never unlinks a linked chain.
	cands := make([][]int32, k0)
	anc := make([]int32, k0) // nodes whose labels reach each chain
	sweepChainRows(dag, order, initID, initPos, k0, par, func(start int, rows [][]int32) {
		parallelRange(k0, par, func(lo, hi int) {
			for a := lo; a < hi; a++ {
				for i, row := range rows {
					if row[tails[a]] == 0 {
						cands[a] = append(cands[a], int32(start+i))
					}
				}
			}
		})
		parallelRange(len(rows), par, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var cnt int32
				for _, p := range rows[i][1:] {
					if p >= 0 {
						cnt++
					}
				}
				anc[start+i] = cnt
			}
		})
	})
	next := linkChains(cands, anc)
	claimed := make([]bool, k0)
	for _, b := range next {
		if b >= 0 {
			claimed[b] = true
		}
	}

	// Renumber: every unclaimed head starts a merged chain; walking the
	// link list concatenates the phase-1 paths into one position-ordered
	// sequence. Merged chain ids follow ascending first-head order.
	initChains := chainsFromColumns(initID, initPos, k0, k)
	nc := 0
	for a := 0; a < k0; a++ {
		if claimed[a] {
			continue // linked into an earlier chain
		}
		pos := int32(0)
		for c := int32(a); c >= 0; c = next[c] {
			for _, v := range initChains[c] {
				x.chainID[v] = int32(nc)
				x.chainPos[v] = pos
				pos++
			}
		}
		nc++
	}
	x.numChains = nc
	x.rebuildChains()

	// Final labels over the merged coordinates: the same per-chain sweeps,
	// gathered into per-node compressed labels. Batches arrive in
	// ascending chain order and nodes append in batch order, so every
	// label's chain list is sorted without a sort.
	chains := make([][]int32, k+1)
	minPos := make([][]int32, k+1)
	sweepChainRows(dag, order, x.chainID, x.chainPos, nc, par, func(start int, rows [][]int32) {
		parallelRange(k+1, par, func(lo, hi int) {
			if lo == 0 {
				lo = 1 // node 0 is never used
			}
			for v := lo; v < hi; v++ {
				for i, row := range rows {
					if p := row[v]; p >= 0 {
						chains[v] = append(chains[v], int32(start+i))
						minPos[v] = append(minPos[v], p)
					}
				}
			}
		})
	})
	parallelRange(k+1, par, func(lo, hi int) {
		if lo == 0 {
			lo = 1
		}
		for d := lo; d < hi; d++ {
			l := label{set: bitset.New(nc), chains: chains[d], minPos: minPos[d]}
			if l.chains == nil {
				l.chains, l.minPos = []int32{}, []int32{}
			}
			for _, c := range l.chains {
				l.set.Add(c)
			}
			x.labels[d] = l
		}
	})
	x.recomputeSucc()
	return x, nil
}

// linkChains picks the phase-2 links: a maximum bipartite matching from
// chain tails to candidate heads (Kuhn's augmenting paths), so the final
// chain count k0 - |matching| is as small as the candidate graph allows.
// Tails enter the matching in descending ancestor count (ascending id on
// ties): a link out of chain A deletes ancestors(A) label entries, and
// augmentation re-routes but never evicts an earlier tail, so the heaviest
// chains keep their links. Returns next[a] = linked head chain or -1.
func linkChains(cands [][]int32, anc []int32) []int32 {
	k0 := len(cands)
	order := make([]int32, k0)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if anc[a] != anc[b] {
			return anc[a] > anc[b]
		}
		return a < b
	})
	matchHead := make([]int32, k0) // head chain -> tail chain linked into it
	visited := make([]int32, k0)
	for i := range matchHead {
		matchHead[i] = -1
		visited[i] = -1
	}
	var epoch int32
	var try func(a int32) bool
	try = func(a int32) bool {
		for _, b := range cands[a] {
			if visited[b] == epoch {
				continue
			}
			visited[b] = epoch
			if matchHead[b] < 0 || try(matchHead[b]) {
				matchHead[b] = a
				return true
			}
		}
		return false
	}
	for _, a := range order {
		try(a)
		epoch++
	}
	next := make([]int32, k0)
	for i := range next {
		next[i] = -1
	}
	for b, a := range matchHead {
		if a >= 0 {
			next[a] = int32(b)
		}
	}
	return next
}

// sweepChainRows computes, for every chain c in 0..numChains-1, the row
// minpos_c: per DAG node the minimum position on chain c reachable through
// at least one arc (-1 when unreachable), and hands the rows to consume in
// batches of ascending chain order. Row filling fans out across at most
// par workers; consume runs serially between batches and may parallelize
// internally.
func sweepChainRows(dag *graph.Graph, order []int32, chainID, chainPos []int32, numChains, par int, consume func(start int, rows [][]int32)) {
	if numChains == 0 {
		return
	}
	batch := rowBatchSize
	if batch > numChains {
		batch = numChains
	}
	rows := make([][]int32, batch)
	for i := range rows {
		rows[i] = make([]int32, dag.N()+1)
	}
	for start := 0; start < numChains; start += batch {
		cnt := batch
		if start+cnt > numChains {
			cnt = numChains - start
		}
		parallelRange(cnt, par, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fillChainRow(dag, order, chainID, chainPos, int32(start+i), rows[i])
			}
		})
		consume(start, rows[:cnt])
	}
}

// fillChainRow runs one reverse-topological sweep for chain c:
// row[v] = min over children ch of (pos(ch) if ch is on chain c, and
// row[ch]), the exact quantity the greedy builder's label merge computes
// for that chain.
func fillChainRow(dag *graph.Graph, order []int32, chainID, chainPos []int32, c int32, row []int32) {
	for i := range row {
		row[i] = -1
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := int32(-1)
		for _, ch := range dag.Children(v) {
			if chainID[ch] == c && (best < 0 || chainPos[ch] < best) {
				best = chainPos[ch]
			}
			if r := row[ch]; r >= 0 && (best < 0 || r < best) {
				best = r
			}
		}
		row[v] = best
	}
}

// chainsFromColumns derives chain member lists in position order from
// per-node (chainID, chainPos) columns over DAG nodes 1..k.
func chainsFromColumns(chainID, chainPos []int32, numChains, k int) [][]int32 {
	counts := make([]int32, numChains)
	for d := 1; d <= k; d++ {
		counts[chainID[d]]++
	}
	out := make([][]int32, numChains)
	for c := range out {
		out[c] = make([]int32, counts[c])
	}
	for d := 1; d <= k; d++ {
		out[chainID[d]][chainPos[d]] = int32(d)
	}
	return out
}

// parallelRange splits 0..n across at most par workers as contiguous
// half-open slices and waits for all of them. par <= 1 runs inline.
func parallelRange(n, par int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		fn(0, n)
		return
	}
	done := make(chan struct{}, par)
	for w := 0; w < par; w++ {
		lo, hi := w*n/par, (w+1)*n/par
		go func(lo, hi int) {
			fn(lo, hi)
			done <- struct{}{}
		}(lo, hi)
	}
	for w := 0; w < par; w++ {
		<-done
	}
}
