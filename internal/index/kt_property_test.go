// The cross-builder equivalence battery: across 50 generator seeds, the KT
// builder must answer Reach and Successors byte-for-byte identically to the
// greedy builder and to the engine's BTC closure — at build time, after a
// batch of InsertArc folds, and after InsertArcMerge collapses a cycle.
// FuzzIndexLoad hardens the loader against arbitrary bytes, with corpora
// seeded from files both builders wrote.
package index_test

import (
	"bytes"
	"math/rand"
	"testing"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
)

// sameAnswers asserts two indexes over the same graph agree exactly:
// identical Reach on every pair and identical Successors slices (same
// order, same contents) for every source.
func sameAnswers(t *testing.T, a, b *index.Index, n int, stage string) {
	t.Helper()
	for u := int32(1); u <= int32(n); u++ {
		for v := int32(1); v <= int32(n); v++ {
			if ra, rb := a.Reach(u, v), b.Reach(u, v); ra != rb {
				t.Fatalf("%s: Reach(%d,%d): %s says %t, %s says %t", stage, u, v, a.Builder(), ra, b.Builder(), rb)
			}
		}
		sa, sb := a.Successors(u), b.Successors(u)
		if len(sa) != len(sb) {
			t.Fatalf("%s: Successors(%d): %s has %d, %s has %d", stage, u, a.Builder(), len(sa), b.Builder(), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("%s: Successors(%d)[%d]: %d vs %d", stage, u, i, sa[i], sb[i])
			}
		}
	}
}

// referenceReach computes the expected closure via the graph package's
// condensation reference (valid on cyclic graphs, unlike the DAG-only
// engine harness above).
func referenceReach(t *testing.T, n int, arcs []graph.Arc) map[[2]int32]bool {
	t.Helper()
	g := graph.New(n, arcs)
	cond := g.Condense()
	dagSucc, err := cond.DAG.Closure()
	if err != nil {
		t.Fatal(err)
	}
	full := cond.ExpandClosure(dagSucc)
	want := make(map[[2]int32]bool)
	for u := int32(1); u <= int32(n); u++ {
		for _, v := range full[u] {
			want[[2]int32{u, v}] = true
		}
	}
	return want
}

// TestKTFiftySeedEquivalence is the issue's 50-seed property test. Each
// seed runs three stages on a fresh generator graph:
//
//  1. build: greedy vs kt (parallelism alternating 1 and 4 across seeds)
//     vs the engine's BTC closure;
//  2. post-InsertArc: the same forward insert batch applied to both
//     builders, re-checked against a fresh engine run over the grown arcs;
//  3. post-InsertArcMerge: a cycle-closing back arc collapses an SCC in
//     both indexes, checked against the condensation reference closure.
func TestKTFiftySeedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("engine closure per seed")
	}
	for seed := int64(1); seed <= 50; seed++ {
		nodes := 20 + int(seed%4)*8
		params := graphgen.Params{
			Nodes:     nodes,
			OutDegree: 2 + int(seed%3),
			Locality:  5 + int(seed%5)*10,
			Seed:      seed,
		}
		arcs, err := graphgen.Generate(params)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.New(nodes, arcs)
		xg, err := index.Build(g)
		if err != nil {
			t.Fatalf("seed %d: greedy build: %v", seed, err)
		}
		par := 1 + 3*int(seed%2)
		xk, err := index.BuildKT(g, index.KTOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("seed %d: kt build: %v", seed, err)
		}
		sameAnswers(t, xg, xk, nodes, "build")
		compareAllPairs(t, xk, engineClosure(t, nodes, arcs), nodes, "build-vs-engine")

		// Stage 2 — forward inserts, applied identically to both indexes.
		rng := rand.New(rand.NewSource(seed * 977))
		grown := append([]graph.Arc(nil), g.Arcs()...)
		for i := 0; i < 10; i++ {
			u := int32(rng.Intn(nodes-1) + 1)
			v := u + int32(rng.Intn(nodes-int(u))) + 1
			if err := xg.InsertArc(u, v); err != nil {
				t.Fatalf("seed %d: greedy InsertArc(%d,%d): %v", seed, u, v, err)
			}
			if err := xk.InsertArc(u, v); err != nil {
				t.Fatalf("seed %d: kt InsertArc(%d,%d): %v", seed, u, v, err)
			}
			grown = append(grown, graph.Arc{From: u, To: v})
		}
		sameAnswers(t, xg, xk, nodes, "post-insert")
		compareAllPairs(t, xk, engineClosure(t, nodes, grown), nodes, "post-insert-vs-engine")

		// Stage 3 — a back arc that closes a cycle over a reachable span,
		// collapsing an SCC in place on both builders.
		u, v := findReachablePair(xk, nodes)
		if u == 0 {
			continue // edgeless seed: nothing to merge
		}
		mg, err := xg.InsertArcMerge(v, u)
		if err != nil {
			t.Fatalf("seed %d: greedy InsertArcMerge(%d,%d): %v", seed, v, u, err)
		}
		mk, err := xk.InsertArcMerge(v, u)
		if err != nil {
			t.Fatalf("seed %d: kt InsertArcMerge(%d,%d): %v", seed, v, u, err)
		}
		if mg != mk {
			t.Fatalf("seed %d: merge collapsed %d components on greedy, %d on kt", seed, mg, mk)
		}
		sameAnswers(t, xg, xk, nodes, "post-merge")
		grown = append(grown, graph.Arc{From: v, To: u})
		want := referenceReach(t, nodes, grown)
		for a := int32(1); a <= int32(nodes); a++ {
			for b := int32(1); b <= int32(nodes); b++ {
				if got := xk.Reach(a, b); got != want[[2]int32{a, b}] {
					t.Fatalf("seed %d: post-merge Reach(%d,%d) = %t, reference says %t", seed, a, b, got, !got)
				}
			}
		}
	}
}

// findReachablePair returns a pair u < v with Reach(u,v) true and u != v,
// or zeros when the graph has no such pair.
func findReachablePair(x *index.Index, n int) (int32, int32) {
	for u := int32(1); u <= int32(n); u++ {
		for v := u + 1; v <= int32(n); v++ {
			if x.Reach(u, v) {
				return u, v
			}
		}
	}
	return 0, 0
}

// FuzzIndexLoad feeds arbitrary bytes to the TCIX loader: it must reject
// or accept without panicking, and anything it accepts must survive a
// Save/Load round trip byte-identically. The corpus seeds include real
// files from both the greedy and the KT builder so mutations explore valid
// structure, not just the header checks.
func FuzzIndexLoad(f *testing.F) {
	for _, seedCase := range []struct {
		nodes, degree, locality int
		seed                    int64
	}{
		{18, 3, 6, 1},
		{30, 2, 30, 2},
	} {
		arcs, err := graphgen.Generate(graphgen.Params{
			Nodes: seedCase.nodes, OutDegree: seedCase.degree,
			Locality: seedCase.locality, Seed: seedCase.seed,
		})
		if err != nil {
			f.Fatal(err)
		}
		g := graph.New(seedCase.nodes, arcs)
		for _, build := range []func() (*index.Index, error){
			func() (*index.Index, error) { return index.Build(g) },
			func() (*index.Index, error) { return index.BuildKT(g, index.KTOptions{Parallelism: 2}) },
		} {
			x, err := build()
			if err != nil {
				f.Fatal(err)
			}
			var buf bytes.Buffer
			if err := x.Save(&buf); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte("TCIX"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		x, err := index.Load(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Whatever the loader accepted must be internally consistent enough
		// to answer queries and to round-trip.
		n := int32(x.N())
		for u := int32(1); u <= n; u++ {
			x.Reach(u, (u%n)+1)
			x.Successors(u)
		}
		var out bytes.Buffer
		if err := x.Save(&out); err != nil {
			t.Fatalf("re-save of accepted index failed: %v", err)
		}
		y, err := index.Load(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("reload of re-saved index failed: %v", err)
		}
		if y.N() != x.N() || y.Chains() != x.Chains() || y.Builder() != x.Builder() {
			t.Fatalf("round trip changed identity: n %d->%d chains %d->%d builder %q->%q",
				x.N(), y.N(), x.Chains(), y.Chains(), x.Builder(), y.Builder())
		}
	})
}
