// Package index provides a persistent reachability index that answers
// Reach(src,dst) with zero page I/O, the O(1)/O(log k) fast path the
// serving layer puts in front of the paper's per-query closure engine.
//
// The design follows the chain-decomposition line of work (Jagadish;
// Kritikakis & Tollis, "Fast and Practical DAG Decomposition with
// Reachability Applications"): the input graph is condensed to its DAG of
// strongly connected components (graph.Condense), the DAG is covered by
// vertex-disjoint chains — paths in topological order, so reaching a chain
// at position p implies reaching every later position — and every DAG node
// carries a compressed closure label: a bitset over chains it reaches plus,
// per reached chain, the minimum reachable position. A query then costs one
// component lookup, one bitset probe (O(1) negative answer) and one binary
// search over the node's reached chains (O(log k)).
//
// The index supports incremental maintenance (InsertArc) in the spirit of
// Hanauer & Henzinger ("Faster Fully Dynamic Transitive Closure in
// Practice"): inserts that keep the condensation acyclic are folded into
// the labels in place; an insert that would create a new cycle among
// components invalidates every stored topological invariant and instead
// flags the index stale, at which point callers fall back to the engine
// path rather than trusting it.
package index

import (
	"fmt"
	"sort"
	"sync"

	"tcstudy/internal/bitset"
	"tcstudy/internal/graph"
)

// label is one DAG node's compressed closure: the set of chains it reaches
// (for O(1) negative answers) and, for each reached chain in ascending
// chain order, the minimum reachable position. Reaching position p of a
// chain implies reaching every position > p, because chains are paths.
type label struct {
	set    *bitset.Set // chains reached, bit per chain
	chains []int32     // reached chain ids, sorted ascending
	minPos []int32     // parallel: minimum reachable position per chain
}

// lookup returns the minimum reachable position in chain c, or -1 when the
// label does not reach chain c at all.
func (l *label) lookup(c int32) int32 {
	if l.set == nil || !l.set.Has(c) {
		return -1
	}
	i := sort.Search(len(l.chains), func(i int) bool { return l.chains[i] >= c })
	return l.minPos[i]
}

// Index is a reachability index over a directed graph on nodes 1..n. It is
// safe for concurrent use: queries take a read lock, InsertArc a write
// lock.
type Index struct {
	mu sync.RWMutex

	n       int     // original node count
	numArcs int     // arcs in the indexed graph (updated by InsertArc)
	comp    []int32 // node -> condensation component, len n+1
	members [][]int32

	numChains int
	chainID   []int32   // DAG node -> chain (0-based), len K+1
	chainPos  []int32   // DAG node -> position within its chain
	chains    [][]int32 // chain -> DAG nodes in path order

	labels   []label     // per DAG node, len K+1
	selfLoop *bitset.Set // original nodes with a self-arc
	stale    bool
	gen      int // in-place inserts folded since build/load (not persisted)
}

// Build constructs the index for g. Cyclic graphs are handled through SCC
// condensation; self-arcs are recorded so closure semantics (a node reaches
// itself only through a cycle) are preserved.
func Build(g *graph.Graph) (*Index, error) {
	n := g.N()
	cond := g.Condense()
	dag := cond.DAG
	k := dag.N()
	order, err := dag.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("index: condensation not acyclic: %w", err)
	}

	x := &Index{
		n:        n,
		numArcs:  g.NumArcs(),
		comp:     cond.Component,
		members:  cond.Members,
		chainID:  make([]int32, k+1),
		chainPos: make([]int32, k+1),
		labels:   make([]label, k+1),
		selfLoop: bitset.New(n + 1),
	}
	for v := int32(1); v <= int32(n); v++ {
		if hasArc(g.Children(v), v) {
			x.selfLoop.Add(v)
		}
	}

	// Greedy chain decomposition: walk the DAG in topological order and
	// append each node to a chain whose current tail is one of its parents,
	// opening a new chain otherwise. Every chain is a path, so positions
	// along it order reachability.
	rev := make([][]int32, k+1)
	for _, a := range dag.Arcs() {
		rev[a.To] = append(rev[a.To], a.From)
	}
	var tails []int32
	for i := range x.chainID {
		x.chainID[i] = -1
	}
	for _, v := range order {
		placed := false
		for _, p := range rev[v] {
			c := x.chainID[p]
			if c >= 0 && tails[c] == p {
				x.chainID[v] = c
				x.chainPos[v] = x.chainPos[p] + 1
				tails[c] = v
				placed = true
				break
			}
		}
		if !placed {
			x.chainID[v] = int32(len(tails))
			x.chainPos[v] = 0
			tails = append(tails, v)
		}
	}
	x.numChains = len(tails)
	x.rebuildChains()

	// Closure labels in reverse topological order: a node reaches, through
	// each child, the child itself plus everything the child reaches. The
	// dense scratch array turns the per-node merge into one pass over the
	// children's compressed labels.
	dense := make([]int32, x.numChains)
	for i := range dense {
		dense[i] = -1
	}
	var touched []int32
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, c := range dag.Children(v) {
			touched = updateMin(dense, touched, x.chainID[c], x.chainPos[c])
			lc := &x.labels[c]
			for j, ch := range lc.chains {
				touched = updateMin(dense, touched, ch, lc.minPos[j])
			}
		}
		x.labels[v] = packLabel(dense, touched, x.numChains)
		for _, ch := range touched {
			dense[ch] = -1
		}
		touched = touched[:0]
	}
	return x, nil
}

// updateMin folds one (chain, pos) point into the dense scratch array.
func updateMin(dense []int32, touched []int32, c, pos int32) []int32 {
	switch cur := dense[c]; {
	case cur < 0:
		dense[c] = pos
		return append(touched, c)
	case pos < cur:
		dense[c] = pos
	}
	return touched
}

// packLabel freezes the scratch state into a compressed label.
func packLabel(dense []int32, touched []int32, numChains int) label {
	l := label{
		set:    bitset.New(numChains),
		chains: make([]int32, len(touched)),
		minPos: make([]int32, len(touched)),
	}
	copy(l.chains, touched)
	sort.Slice(l.chains, func(a, b int) bool { return l.chains[a] < l.chains[b] })
	for i, c := range l.chains {
		l.minPos[i] = dense[c]
		l.set.Add(c)
	}
	return l
}

// rebuildChains derives the chain -> members-in-order view from the
// per-node chainID/chainPos columns (also used after Load).
func (x *Index) rebuildChains() {
	counts := make([]int32, x.numChains)
	for d := 1; d < len(x.chainID); d++ {
		counts[x.chainID[d]]++
	}
	x.chains = make([][]int32, x.numChains)
	for c := range x.chains {
		x.chains[c] = make([]int32, counts[c])
	}
	for d := 1; d < len(x.chainID); d++ {
		x.chains[x.chainID[d]][x.chainPos[d]] = int32(d)
	}
}

func hasArc(children []int32, v int32) bool {
	i := sort.Search(len(children), func(i int) bool { return children[i] >= v })
	return i < len(children) && children[i] == v
}

// N reports the number of nodes in the indexed graph.
func (x *Index) N() int { return x.n }

// NumArcs reports the number of arcs in the indexed graph, counting arcs
// accepted by InsertArc since the build.
func (x *Index) NumArcs() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.numArcs
}

// Stale reports whether an order-violating insert has invalidated the
// index. A stale index still answers queries, but the answers reflect the
// graph before the violating insert; callers should fall back to the
// engine path.
func (x *Index) Stale() bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.stale
}

// Generation reports how many arcs InsertArc has folded in place since
// the index was built or loaded. A freshly built or loaded index is
// generation 0; the counter is not persisted by Save. Replicas serving
// the same index file at the same generation give identical answers,
// which is what a routing tier's health checks compare.
func (x *Index) Generation() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.gen
}

// Reach reports whether src reaches dst, with closure semantics: a node
// reaches itself only through a cycle (a non-trivial component or a
// self-arc). Nodes outside 1..n are unreachable by definition.
func (x *Index) Reach(src, dst int32) bool {
	if src < 1 || dst < 1 || int(src) > x.n || int(dst) > x.n {
		return false
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.reachLocked(src, dst)
}

func (x *Index) reachLocked(src, dst int32) bool {
	cs, cd := x.comp[src], x.comp[dst]
	if cs == cd {
		if src != dst {
			return true // same non-trivial strongly connected component
		}
		return len(x.members[cs]) > 1 || x.selfLoop.Has(src)
	}
	return x.dagReach(cs, cd)
}

// dagReach reports whether component a reaches component b (a != b) via a
// path of length >= 1 in the condensation DAG: O(1) on the chain bitset
// for a negative answer, O(log k) on the label otherwise.
func (x *Index) dagReach(a, b int32) bool {
	p := x.labels[a].lookup(x.chainID[b])
	return p >= 0 && p <= x.chainPos[b]
}

// live reports whether DAG node d is still a component of its own. A node
// whose members were absorbed by an InsertArcMerge cycle collapse keeps its
// chain slot (labels may still point at it) but owns no original nodes and
// must be skipped by sweeps over components.
func (x *Index) live(d int32) bool {
	return len(x.members[d]) > 0
}

// Successors returns every node reachable from src (closure semantics),
// sorted ascending. It enumerates the label's chains: reaching position p
// of a chain means reaching all of its members from p on.
func (x *Index) Successors(src int32) []int32 {
	if src < 1 || int(src) > x.n {
		return nil
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []int32
	cs := x.comp[src]
	if len(x.members[cs]) > 1 {
		out = append(out, x.members[cs]...)
	} else if x.selfLoop.Has(src) {
		out = append(out, src)
	}
	lb := &x.labels[cs]
	for j, c := range lb.chains {
		chain := x.chains[c]
		for p := lb.minPos[j]; p < int32(len(chain)); p++ {
			out = append(out, x.members[chain[p]]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// After a cycle collapse the source's merged label carries its own
	// chain point, so its members can appear both above and through the
	// chain walk; collapse duplicates.
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Stats summarizes the index shape for inspection tooling.
type Stats struct {
	Nodes        int     // original nodes
	Arcs         int     // arcs in the indexed graph
	Components   int     // condensation DAG nodes
	Chains       int     // chain count k (label width)
	LabelEntries int     // total (chain, minPos) pairs across all labels
	AvgLabel     float64 // label entries per DAG node
	ChainOverlap float64 // fraction of sampled label pairs whose chain sets intersect
	Stale        bool
	Generation   int // in-place mutations folded since build/load
	Merged       int // components absorbed by cycle-collapsing inserts
}

// ComputeStats derives the summary. ChainOverlap samples up to 64
// components and measures, with bitset.Intersects, how often two labels
// share at least one chain — a proxy for how much the chain compression is
// actually shared across the graph.
func (x *Index) ComputeStats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	k := len(x.labels) - 1
	st := Stats{
		Nodes:      x.n,
		Arcs:       x.numArcs,
		Components: k,
		Chains:     x.numChains,
		Stale:      x.stale,
		Generation: x.gen,
	}
	for d := 1; d <= k; d++ {
		st.LabelEntries += len(x.labels[d].chains)
		if !x.live(int32(d)) {
			st.Merged++
		}
	}
	if k > 0 {
		st.AvgLabel = float64(st.LabelEntries) / float64(k)
	}
	sample := k
	if sample > 64 {
		sample = 64
	}
	pairs, hits := 0, 0
	for a := 1; a <= sample; a++ {
		for b := a + 1; b <= sample; b++ {
			pairs++
			if x.labels[a].set.Intersects(x.labels[b].set) {
				hits++
			}
		}
	}
	if pairs > 0 {
		st.ChainOverlap = float64(hits) / float64(pairs)
	}
	return st
}
