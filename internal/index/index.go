// Package index provides a persistent reachability index that answers
// Reach(src,dst) with zero page I/O, the O(1)/O(log k) fast path the
// serving layer puts in front of the paper's per-query closure engine.
//
// The design follows the chain-decomposition line of work (Jagadish;
// Kritikakis & Tollis, "Fast and Practical DAG Decomposition with
// Reachability Applications"): the input graph is condensed to its DAG of
// strongly connected components (graph.Condense), the DAG is covered by
// vertex-disjoint chains — paths in topological order, so reaching a chain
// at position p implies reaching every later position — and every DAG node
// carries a compressed closure label: a bitset over chains it reaches plus,
// per reached chain, the minimum reachable position. A query then costs one
// component lookup, one bitset probe (O(1) negative answer) and one binary
// search over the node's reached chains (O(log k)).
//
// The index supports incremental maintenance (InsertArc) in the spirit of
// Hanauer & Henzinger ("Faster Fully Dynamic Transitive Closure in
// Practice"): inserts that keep the condensation acyclic are folded into
// the labels in place; an insert that would create a new cycle among
// components invalidates every stored topological invariant and instead
// flags the index stale, at which point callers fall back to the engine
// path rather than trusting it.
package index

import (
	"fmt"
	"sort"
	"sync"

	"tcstudy/internal/bitset"
	"tcstudy/internal/graph"
)

// label is one DAG node's compressed closure: the set of chains it reaches
// (for O(1) negative answers) and, for each reached chain in ascending
// chain order, the minimum reachable position. Reaching position p of a
// chain implies reaching every position > p, because chains are paths.
type label struct {
	set    *bitset.Set // chains reached, bit per chain
	chains []int32     // reached chain ids, sorted ascending
	minPos []int32     // parallel: minimum reachable position per chain
}

// lookup returns the minimum reachable position in chain c, or -1 when the
// label does not reach chain c at all. The search is hand-rolled: this is
// the hottest loop of every positive Reach probe, and a sort.Search closure
// call per halving step costs more than the comparison it wraps.
func (l *label) lookup(c int32) int32 {
	if l.set == nil || !l.set.Has(c) {
		return -1
	}
	lo, hi := 0, len(l.chains)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.chains[mid] < c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return l.minPos[lo]
}

// Builder names for the two chain-decomposition strategies. The name is
// persisted in the TCIX flags word, so a loaded index still reports which
// builder produced it.
const (
	// BuilderGreedy is the original topological-sweep decomposition:
	// chains are arc-paths extended whenever a parent is a chain tail.
	BuilderGreedy = "greedy"
	// BuilderKT is the Kritikakis–Tollis decomposition (BuildKT): path
	// extraction plus reachability-gated chain concatenation.
	BuilderKT = "kt"
)

// Index is a reachability index over a directed graph on nodes 1..n. It is
// safe for concurrent use: queries take a read lock, InsertArc a write
// lock.
type Index struct {
	mu sync.RWMutex

	n       int     // original node count
	numArcs int     // arcs in the indexed graph (updated by InsertArc)
	builder string  // decomposition that produced the chains
	comp    []int32 // node -> condensation component, len n+1
	members [][]int32

	numChains int
	chainID   []int32   // DAG node -> chain (0-based), len K+1
	chainPos  []int32   // DAG node -> position within its chain
	chains    [][]int32 // chain -> DAG nodes in path order

	labels   []label     // per DAG node, len K+1
	succ     []int32     // per DAG node, exact successor count (see recomputeSucc)
	pred     []int32     // per DAG node, live predecessor count (see recomputeSucc)
	selfLoop *bitset.Set // original nodes with a self-arc
	stale    bool
	gen      int // in-place inserts folded since build/load (not persisted)
}

// Build constructs the index for g. Cyclic graphs are handled through SCC
// condensation; self-arcs are recorded so closure semantics (a node reaches
// itself only through a cycle) are preserved.
func Build(g *graph.Graph) (*Index, error) {
	n := g.N()
	cond := g.Condense()
	dag := cond.DAG
	k := dag.N()
	order, err := dag.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("index: condensation not acyclic: %w", err)
	}

	x := &Index{
		n:        n,
		numArcs:  g.NumArcs(),
		builder:  BuilderGreedy,
		comp:     cond.Component,
		members:  cond.Members,
		chainID:  make([]int32, k+1),
		chainPos: make([]int32, k+1),
		labels:   make([]label, k+1),
		selfLoop: bitset.New(n + 1),
	}
	for v := int32(1); v <= int32(n); v++ {
		if hasArc(g.Children(v), v) {
			x.selfLoop.Add(v)
		}
	}

	// Greedy chain decomposition: walk the DAG in topological order and
	// append each node to a chain whose current tail is one of its parents,
	// opening a new chain otherwise. Every chain is a path, so positions
	// along it order reachability.
	rev := make([][]int32, k+1)
	for _, a := range dag.Arcs() {
		rev[a.To] = append(rev[a.To], a.From)
	}
	var tails []int32
	for i := range x.chainID {
		x.chainID[i] = -1
	}
	for _, v := range order {
		placed := false
		for _, p := range rev[v] {
			c := x.chainID[p]
			if c >= 0 && tails[c] == p {
				x.chainID[v] = c
				x.chainPos[v] = x.chainPos[p] + 1
				tails[c] = v
				placed = true
				break
			}
		}
		if !placed {
			x.chainID[v] = int32(len(tails))
			x.chainPos[v] = 0
			tails = append(tails, v)
		}
	}
	x.numChains = len(tails)
	x.rebuildChains()

	// Closure labels in reverse topological order: a node reaches, through
	// each child, the child itself plus everything the child reaches. The
	// dense scratch array turns the per-node merge into one pass over the
	// children's compressed labels.
	dense := make([]int32, x.numChains)
	for i := range dense {
		dense[i] = -1
	}
	var touched []int32
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, c := range dag.Children(v) {
			touched = updateMin(dense, touched, x.chainID[c], x.chainPos[c])
			lc := &x.labels[c]
			for j, ch := range lc.chains {
				touched = updateMin(dense, touched, ch, lc.minPos[j])
			}
		}
		x.labels[v] = packLabel(dense, touched, x.numChains)
		for _, ch := range touched {
			dense[ch] = -1
		}
		touched = touched[:0]
	}
	x.recomputeSucc()
	return x, nil
}

// updateMin folds one (chain, pos) point into the dense scratch array.
func updateMin(dense []int32, touched []int32, c, pos int32) []int32 {
	switch cur := dense[c]; {
	case cur < 0:
		dense[c] = pos
		return append(touched, c)
	case pos < cur:
		dense[c] = pos
	}
	return touched
}

// packLabel freezes the scratch state into a compressed label.
func packLabel(dense []int32, touched []int32, numChains int) label {
	l := label{
		set:    bitset.New(numChains),
		chains: make([]int32, len(touched)),
		minPos: make([]int32, len(touched)),
	}
	copy(l.chains, touched)
	sort.Slice(l.chains, func(a, b int) bool { return l.chains[a] < l.chains[b] })
	for i, c := range l.chains {
		l.minPos[i] = dense[c]
		l.set.Add(c)
	}
	return l
}

// rebuildChains derives the chain -> members-in-order view from the
// per-node chainID/chainPos columns (also used after Load).
func (x *Index) rebuildChains() {
	counts := make([]int32, x.numChains)
	for d := 1; d < len(x.chainID); d++ {
		counts[x.chainID[d]]++
	}
	x.chains = make([][]int32, x.numChains)
	for c := range x.chains {
		x.chains[c] = make([]int32, counts[c])
	}
	for d := 1; d < len(x.chainID); d++ {
		x.chains[x.chainID[d]][x.chainPos[d]] = int32(d)
	}
}

func hasArc(children []int32, v int32) bool {
	i := sort.Search(len(children), func(i int) bool { return children[i] >= v })
	return i < len(children) && children[i] == v
}

// N reports the number of nodes in the indexed graph.
func (x *Index) N() int { return x.n }

// Builder reports which decomposition produced the chains (BuilderGreedy
// or BuilderKT); the name round-trips through Save/Load.
func (x *Index) Builder() string { return x.builder }

// Chains reports the chain count k — the width of every label bitset and
// the decomposition-quality number the KT builder minimizes.
func (x *Index) Chains() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.numChains
}

// NumArcs reports the number of arcs in the indexed graph, counting arcs
// accepted by InsertArc since the build.
func (x *Index) NumArcs() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.numArcs
}

// Stale reports whether an order-violating insert has invalidated the
// index. A stale index still answers queries, but the answers reflect the
// graph before the violating insert; callers should fall back to the
// engine path.
func (x *Index) Stale() bool {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.stale
}

// Generation reports how many arcs InsertArc has folded in place since
// the index was built or loaded. A freshly built or loaded index is
// generation 0; the counter is not persisted by Save. Replicas serving
// the same index file at the same generation give identical answers,
// which is what a routing tier's health checks compare.
func (x *Index) Generation() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.gen
}

// Reach reports whether src reaches dst, with closure semantics: a node
// reaches itself only through a cycle (a non-trivial component or a
// self-arc). Nodes outside 1..n are unreachable by definition.
func (x *Index) Reach(src, dst int32) bool {
	if src < 1 || dst < 1 || int(src) > x.n || int(dst) > x.n {
		return false
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.reachLocked(src, dst)
}

func (x *Index) reachLocked(src, dst int32) bool {
	cs, cd := x.comp[src], x.comp[dst]
	if cs == cd {
		if src != dst {
			return true // same non-trivial strongly connected component
		}
		return len(x.members[cs]) > 1 || x.selfLoop.Has(src)
	}
	return x.dagReach(cs, cd)
}

// dagReach reports whether component a reaches component b (a != b) via a
// path of length >= 1 in the condensation DAG. Two count gates reject
// most negatives in O(1) before any label work:
//
//   - succ: a path a ~> b puts b and all of b's successors among a's, so
//     succ[a] < succ[b] proves unreachability;
//   - pred: it equally puts a and all of a's predecessors among b's, so
//     pred[b] < pred[a] proves unreachability.
//
// (Both comparisons are strict-less, not <=: after a cycle collapse the
// merged representative's label carries its own chain point, so an
// ancestor's succ count — and the representative's own pred count — can
// tie.) The pair filters exactly the probes the chain bitset cannot —
// b's chain touched by a's label, but only past b (common under merged KT
// chains, where one chain spans many regions): such an a sits late in the
// order, with few predecessors of its own, while an early b has fewer
// successors than it. Survivors pay the bitset probe and an O(log label)
// search.
func (x *Index) dagReach(a, b int32) bool {
	if x.succ[a] < x.succ[b] || x.pred[b] < x.pred[a] {
		return false
	}
	return x.dagReachLabel(a, b)
}

// dagReachLabel is dagReach without the successor-count gate: the label
// probe alone. In-place mutation sweeps (foldAcyclicLocked,
// mergeComponentsLocked) must use it, because they interleave label
// updates with membership probes and the counts are only recomputed once
// the sweep settles.
func (x *Index) dagReachLabel(a, b int32) bool {
	p := x.labels[a].lookup(x.chainID[b])
	return p >= 0 && p <= x.chainPos[b]
}

// succCount derives a component's exact DAG successor count from its
// label: positions minPos..len-1 of every reached chain, each DAG slot
// counted once because chains partition the slots. Nothing is persisted —
// Load re-derives the counts the same way.
func (x *Index) succCount(d int32) int32 {
	var s int32
	l := &x.labels[d]
	for j, c := range l.chains {
		s += int32(len(x.chains[c])) - l.minPos[j]
	}
	return s
}

// recomputeSucc refreshes every component's successor and predecessor
// counts after the labels settle (build, load, or a mutation sweep). The
// pred pass inverts the labels with one per-chain difference array: entry
// (c, m) of a live label marks positions m.. of chain c reached, so a
// prefix sum over the deltas yields, per slot, how many live components
// reach it. Only live labels count — the fold sweeps stop maintaining a
// label once its component is absorbed, so a dead label goes stale and
// must not vote.
func (x *Index) recomputeSucc() {
	if cap(x.succ) < len(x.labels) {
		x.succ = make([]int32, len(x.labels))
	}
	x.succ = x.succ[:len(x.labels)]
	for d := 1; d < len(x.labels); d++ {
		x.succ[d] = x.succCount(int32(d))
	}
	if cap(x.pred) < len(x.labels) {
		x.pred = make([]int32, len(x.labels))
	}
	x.pred = x.pred[:len(x.labels)]
	delta := make([][]int32, x.numChains)
	for c := range delta {
		delta[c] = make([]int32, len(x.chains[c]))
	}
	for d := 1; d < len(x.labels); d++ {
		if !x.live(int32(d)) {
			continue
		}
		l := &x.labels[d]
		for j, c := range l.chains {
			delta[c][l.minPos[j]]++
		}
	}
	for c, dl := range delta {
		var sum int32
		for p, inc := range dl {
			sum += inc
			x.pred[x.chains[c][p]] = sum
		}
	}
}

// live reports whether DAG node d is still a component of its own. A node
// whose members were absorbed by an InsertArcMerge cycle collapse keeps its
// chain slot (labels may still point at it) but owns no original nodes and
// must be skipped by sweeps over components.
func (x *Index) live(d int32) bool {
	return len(x.members[d]) > 0
}

// Successors returns every node reachable from src (closure semantics),
// sorted ascending. It enumerates the label's chains: reaching position p
// of a chain means reaching all of its members from p on.
func (x *Index) Successors(src int32) []int32 {
	if src < 1 || int(src) > x.n {
		return nil
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []int32
	cs := x.comp[src]
	if len(x.members[cs]) > 1 {
		out = append(out, x.members[cs]...)
	} else if x.selfLoop.Has(src) {
		out = append(out, src)
	}
	lb := &x.labels[cs]
	for j, c := range lb.chains {
		chain := x.chains[c]
		for p := lb.minPos[j]; p < int32(len(chain)); p++ {
			out = append(out, x.members[chain[p]]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// After a cycle collapse the source's merged label carries its own
	// chain point, so its members can appear both above and through the
	// chain walk; collapse duplicates.
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Stats summarizes the index shape for inspection tooling.
type Stats struct {
	Nodes        int     // original nodes
	Arcs         int     // arcs in the indexed graph
	Components   int     // condensation DAG nodes
	Chains       int     // chain count k (label width)
	Builder      string  // decomposition that produced the chains
	LabelEntries int     // total (chain, minPos) pairs across all labels
	AvgLabel     float64 // label entries per DAG node
	P50Label     int     // median label entries per component
	P95Label     int     // 95th-percentile label entries per component
	MaxLabel     int     // largest single label
	FileBytes    int64   // exact serialized size Save would write
	BytesPerNode float64 // FileBytes / Nodes (0 for an empty graph)
	ChainOverlap float64 // fraction of sampled label pairs whose chain sets intersect
	Stale        bool
	Generation   int // in-place mutations folded since build/load
	Merged       int // components absorbed by cycle-collapsing inserts
}

// ComputeStats derives the summary. ChainOverlap samples up to 64
// components and measures, with bitset.Intersects, how often two labels
// share at least one chain — a proxy for how much the chain compression is
// actually shared across the graph. Every derived ratio is guarded against
// the degenerate shapes Load accepts (an empty graph, a k == n index of
// one-node chains whose labels are all empty): the ratios report 0 rather
// than dividing by zero.
func (x *Index) ComputeStats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	k := len(x.labels) - 1
	st := Stats{
		Nodes:      x.n,
		Arcs:       x.numArcs,
		Components: k,
		Chains:     x.numChains,
		Builder:    x.builder,
		Stale:      x.stale,
		Generation: x.gen,
	}
	sizes := make([]int, 0, k)
	for d := 1; d <= k; d++ {
		st.LabelEntries += len(x.labels[d].chains)
		sizes = append(sizes, len(x.labels[d].chains))
		if !x.live(int32(d)) {
			st.Merged++
		}
	}
	if k > 0 {
		st.AvgLabel = float64(st.LabelEntries) / float64(k)
		sort.Ints(sizes)
		st.P50Label = sizes[50*(len(sizes)-1)/100]
		st.P95Label = sizes[95*(len(sizes)-1)/100]
		st.MaxLabel = sizes[len(sizes)-1]
	}
	st.FileBytes = x.savedBytesLocked()
	if x.n > 0 {
		st.BytesPerNode = float64(st.FileBytes) / float64(x.n)
	}
	sample := k
	if sample > 64 {
		sample = 64
	}
	pairs, hits := 0, 0
	for a := 1; a <= sample; a++ {
		for b := a + 1; b <= sample; b++ {
			pairs++
			if x.labels[a].set.Intersects(x.labels[b].set) {
				hits++
			}
		}
	}
	if pairs > 0 {
		st.ChainOverlap = float64(hits) / float64(pairs)
	}
	return st
}
