// Property and fuzz tests: the index must agree exactly with the engine's
// closure — at build time and after a batch of incremental inserts. The
// fuzz input encoding (pairs of bytes decoded onto a small node range)
// reuses the scheme and seed corpus of internal/graph/fuzz_test.go.
package index_test

import (
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
)

// engineClosure runs the engine's BTC algorithm over the full closure and
// returns the successor sets.
func engineClosure(t testing.TB, n int, arcs []graph.Arc) map[int32][]int32 {
	t.Helper()
	db := core.NewDatabase(n, arcs)
	res, err := core.Run(db, core.BTC, core.Query{}, core.Config{BufferPages: 10})
	if err != nil {
		t.Fatal(err)
	}
	return res.Successors
}

// compareAllPairs checks index.Reach against engine successor sets over
// every (src,dst) pair.
func compareAllPairs(t testing.TB, x *index.Index, succ map[int32][]int32, n int, stage string) {
	t.Helper()
	want := make(map[[2]int32]bool)
	for u, vs := range succ {
		for _, v := range vs {
			want[[2]int32{u, v}] = true
		}
	}
	for u := int32(1); u <= int32(n); u++ {
		for v := int32(1); v <= int32(n); v++ {
			if got := x.Reach(u, v); got != want[[2]int32{u, v}] {
				t.Fatalf("%s: Reach(%d,%d) = %t, engine says %t", stage, u, v, got, !got)
			}
		}
	}
}

// forwardArcs decodes fuzz bytes into a DAG arc list: each byte pair is an
// arc with endpoints folded into 1..n and oriented low->high, which keeps
// the graph acyclic so the engine (and post-insert rebuilds) accept it.
func forwardArcs(raw []byte, n int) []graph.Arc {
	var arcs []graph.Arc
	for i := 0; i+1 < len(raw); i += 2 {
		a := int32(raw[i]%byte(n)) + 1
		b := int32(raw[i+1]%byte(n)) + 1
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		arcs = append(arcs, graph.Arc{From: a, To: b})
	}
	return arcs
}

// TestIndexMatchesBTC is the issue's property test: on random DAGs the
// index must answer exactly like the engine's BTC closure, including after
// a batch of InsertArc calls.
func TestIndexMatchesBTC(t *testing.T) {
	if testing.Short() {
		t.Skip("engine runs per case")
	}
	for _, tc := range []struct {
		nodes, degree, locality int
		seed                    int64
		inserts                 int
	}{
		{30, 3, 10, 1, 8},
		{60, 2, 60, 2, 12},
		{40, 5, 5, 3, 6},
		{25, 4, 25, 4, 25},
	} {
		arcs, err := graphgen.Generate(graphgen.Params{
			Nodes: tc.nodes, OutDegree: tc.degree, Locality: tc.locality, Seed: tc.seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := graph.New(tc.nodes, arcs)
		x, err := index.Build(g)
		if err != nil {
			t.Fatal(err)
		}
		compareAllPairs(t, x, engineClosure(t, tc.nodes, arcs), tc.nodes, "build")

		// Batch of forward (acyclicity-preserving) inserts: every one must
		// be folded in place, and the result must match a from-scratch
		// engine run over the grown arc list.
		grown := append([]graph.Arc(nil), g.Arcs()...)
		for i := 0; i < tc.inserts; i++ {
			u := int32((i*7+int(tc.seed))%(tc.nodes-1)) + 1
			v := u + 1 + int32((i*3)%(tc.nodes-int(u)))
			if err := x.InsertArc(u, v); err != nil {
				t.Fatalf("InsertArc(%d,%d): %v", u, v, err)
			}
			grown = append(grown, graph.Arc{From: u, To: v})
		}
		if x.Stale() {
			t.Fatal("forward inserts marked the index stale")
		}
		compareAllPairs(t, x, engineClosure(t, tc.nodes, grown), tc.nodes, "post-insert")
	}
}

// FuzzIndexReach cross-checks the index against the graph package's
// reference closure on fuzz-shaped DAGs, splitting the input into a build
// half and an insert half so incremental maintenance is fuzzed too.
func FuzzIndexReach(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 1})
	f.Add([]byte{1, 1, 2, 2})
	f.Add([]byte{5, 1, 4, 2, 3, 3, 2, 4, 1, 5, 1, 3, 3, 5})
	f.Add([]byte{0, 9, 3, 4, 4, 9, 0, 1, 7, 2, 2, 8})

	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 12
		half := len(raw) / 2
		base := forwardArcs(raw[:half], n)
		extra := forwardArcs(raw[half:], n)

		g := graph.New(n, base)
		x, err := index.Build(g)
		if err != nil {
			t.Fatal(err)
		}
		arcs := g.Arcs()
		for _, a := range extra {
			if err := x.InsertArc(a.From, a.To); err != nil {
				t.Fatalf("InsertArc(%d,%d): %v", a.From, a.To, err)
			}
			arcs = append(arcs, a)
		}
		succ, err := graph.New(n, arcs).Closure()
		if err != nil {
			t.Fatal(err)
		}
		for u := int32(1); u <= n; u++ {
			for v := int32(1); v <= n; v++ {
				if got, want := x.Reach(u, v), succ[u].Has(v); got != want {
					t.Fatalf("Reach(%d,%d) = %t, reference closure says %t", u, v, got, want)
				}
			}
			got := x.Successors(u)
			if len(got) != succ[u].Count() {
				t.Fatalf("Successors(%d) has %d nodes, reference %d", u, len(got), succ[u].Count())
			}
		}
	})
}

// FuzzIndexReachCyclic builds over arbitrary (cyclic) graphs and checks
// against the condensation-expanded reference closure. Self-arcs are
// excluded: the repository reference (Condensation.ExpandClosure) treats a
// trivial component as non-self-reaching, and the study's generators never
// emit them; the index's richer self-loop semantics are unit-tested
// directly.
func FuzzIndexReachCyclic(f *testing.F) {
	f.Add([]byte{1, 2, 2, 3, 3, 1})
	f.Add([]byte{5, 1, 4, 2, 3, 3, 2, 4, 1, 5, 1, 3, 3, 5})

	f.Fuzz(func(t *testing.T, raw []byte) {
		const n = 10
		var arcs []graph.Arc
		for i := 0; i+1 < len(raw); i += 2 {
			from := int32(raw[i]%n) + 1
			to := int32(raw[i+1]%n) + 1
			if from != to {
				arcs = append(arcs, graph.Arc{From: from, To: to})
			}
		}
		g := graph.New(n, arcs)
		x, err := index.Build(g)
		if err != nil {
			t.Fatal(err)
		}
		cond := g.Condense()
		dagSucc, err := cond.DAG.Closure()
		if err != nil {
			t.Fatal(err)
		}
		full := cond.ExpandClosure(dagSucc)
		for u := int32(1); u <= n; u++ {
			want := make(map[int32]bool, len(full[u]))
			for _, v := range full[u] {
				want[v] = true
			}
			for v := int32(1); v <= n; v++ {
				if got := x.Reach(u, v); got != want[v] {
					t.Fatalf("Reach(%d,%d) = %t, reference says %t", u, v, got, want[v])
				}
			}
		}
	})
}
