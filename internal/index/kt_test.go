package index

import (
	"bytes"
	"fmt"
	"testing"

	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
)

func mustBuildKT(t testing.TB, g *graph.Graph, par int) *Index {
	t.Helper()
	x, err := BuildKT(g, KTOptions{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// gridArcs builds a layered rectangle-model DAG: rows × cols nodes, every
// node in row r sending fanout seeded-random arcs into row r+1. Small
// rows/large cols is the paper's "wide" shape (H ≈ rows, W ≈ |G|/rows);
// the transpose is "deep".
func gridArcs(rows, cols, fanout int, seed int64) (int, []graph.Arc) {
	n := rows * cols
	node := func(r, c int) int32 { return int32(r*cols + c + 1) }
	rng := uint64(seed)
	next := func(limit int) int {
		// splitmix64-style step; deterministic and dependency-free.
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int((z ^ (z >> 31)) % uint64(limit))
	}
	var arcs []graph.Arc
	for r := 0; r < rows-1; r++ {
		for c := 0; c < cols; c++ {
			for f := 0; f < fanout; f++ {
				arcs = append(arcs, graph.Arc{From: node(r, c), To: node(r+1, next(cols))})
			}
		}
	}
	return n, arcs
}

func TestKTDiamond(t *testing.T) {
	g := diamond()
	x := mustBuildKT(t, g, 1)
	reachAgainstClosure(t, g, x)
	if x.Builder() != BuilderKT {
		t.Fatalf("builder %q, want %q", x.Builder(), BuilderKT)
	}
	// The diamond is covered by two chains either way (width 2), but the
	// KT invariant worth pinning is correctness of the merged labels.
	if x.Chains() < 1 || x.Chains() > 2 {
		t.Fatalf("diamond decomposed into %d chains", x.Chains())
	}
}

func TestKTCyclicGraph(t *testing.T) {
	// Same shape as TestReachCyclicGraph: a 2-cycle, a pendant, a
	// self-loop, an isolated node.
	g := graph.New(5, []graph.Arc{
		{From: 1, To: 2}, {From: 2, To: 1}, {From: 2, To: 3}, {From: 4, To: 4},
	})
	x := mustBuildKT(t, g, 2)
	for _, tc := range []struct {
		u, v int32
		want bool
	}{
		{1, 1, true}, {1, 2, true}, {2, 1, true}, {1, 3, true},
		{3, 3, false}, {4, 4, true}, {5, 5, false}, {3, 1, false},
	} {
		if got := x.Reach(tc.u, tc.v); got != tc.want {
			t.Fatalf("Reach(%d,%d) = %t, want %t", tc.u, tc.v, got, tc.want)
		}
	}
}

// TestKTMatchesGreedy pins the two builders to identical answers (Reach
// over all pairs and Successors slices) across generator families.
func TestKTMatchesGreedy(t *testing.T) {
	for _, p := range []graphgen.Params{
		{Nodes: 80, OutDegree: 3, Locality: 10, Seed: 1},
		{Nodes: 120, OutDegree: 2, Locality: 120, Seed: 2},
		{Nodes: 60, OutDegree: 6, Locality: 6, Seed: 3},
	} {
		g, err := graphgen.GenerateGraph(p)
		if err != nil {
			t.Fatal(err)
		}
		xg := mustBuild(t, g)
		xk := mustBuildKT(t, g, 3)
		compareIndexes(t, xg, xk, p.String())
	}
}

// compareIndexes fails unless a and b answer identically on every Reach
// pair and every Successors call.
func compareIndexes(t testing.TB, a, b *Index, stage string) {
	t.Helper()
	if a.N() != b.N() {
		t.Fatalf("%s: node counts differ: %d vs %d", stage, a.N(), b.N())
	}
	n := int32(a.N())
	for u := int32(1); u <= n; u++ {
		for v := int32(1); v <= n; v++ {
			if ga, gb := a.Reach(u, v), b.Reach(u, v); ga != gb {
				t.Fatalf("%s: Reach(%d,%d): %t vs %t", stage, u, v, ga, gb)
			}
		}
		sa, sb := a.Successors(u), b.Successors(u)
		if len(sa) != len(sb) {
			t.Fatalf("%s: Successors(%d): %d vs %d nodes", stage, u, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("%s: Successors(%d)[%d]: %d vs %d", stage, u, i, sa[i], sb[i])
			}
		}
	}
}

// TestKTDeterministicAcrossParallelism: the serialized index must be
// byte-identical at every worker count — the property that keeps golden
// files and replica fingerprint comparisons stable.
func TestKTDeterministicAcrossParallelism(t *testing.T) {
	n, arcs := gridArcs(12, 25, 3, 7)
	g := graph.New(n, arcs)
	var want bytes.Buffer
	if err := mustBuildKT(t, g, 1).Save(&want); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 3, 4, 8, 64} {
		var got bytes.Buffer
		if err := mustBuildKT(t, g, par).Save(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("parallelism %d produced a different index file (%d vs %d bytes)",
				par, got.Len(), want.Len())
		}
	}
}

// TestKTReducesChainsOnWideGrid pins the decomposition-quality claim the
// committed BENCH entry records: on a wide rectangle-model grid the KT
// builder must cut the chain count by at least 30% and the file size by at
// least 20% against the greedy builder.
func TestKTReducesChainsOnWideGrid(t *testing.T) {
	n, arcs := gridArcs(20, 50, 3, 42)
	g := graph.New(n, arcs)
	xg := mustBuild(t, g)
	xk := mustBuildKT(t, g, 2)
	compareIndexes(t, xg, xk, "wide-grid")
	sg, sk := xg.ComputeStats(), xk.ComputeStats()
	if float64(sk.Chains) > 0.7*float64(sg.Chains) {
		t.Fatalf("kt chains %d vs greedy %d: less than 30%% reduction", sk.Chains, sg.Chains)
	}
	if float64(sk.FileBytes) > 0.8*float64(sg.FileBytes) {
		t.Fatalf("kt file %d bytes vs greedy %d: less than 20%% reduction", sk.FileBytes, sg.FileBytes)
	}
}

// TestKTSaveLoadRoundTrip: a KT index round-trips through the unchanged
// version-1 TCIX format, keeping its answers and its builder name.
func TestKTSaveLoadRoundTrip(t *testing.T) {
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: 150, OutDegree: 4, Locality: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(150, arcs)
	x := mustBuildKT(t, g, 4)
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.Builder() != BuilderKT {
		t.Fatalf("builder %q after round-trip, want %q", y.Builder(), BuilderKT)
	}
	if y.Chains() != x.Chains() {
		t.Fatalf("chains %d after round-trip, want %d", y.Chains(), x.Chains())
	}
	compareIndexes(t, x, y, "round-trip")
}

// TestKTInsertArc exercises incremental maintenance on a KT-decomposed
// index: acyclicity-preserving inserts fold in place and keep both
// builders in agreement.
func TestKTInsertArc(t *testing.T) {
	arcs, err := graphgen.Generate(graphgen.Params{Nodes: 60, OutDegree: 2, Locality: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New(60, arcs)
	xg := mustBuild(t, g)
	xk := mustBuildKT(t, g, 2)
	for i := 0; i < 20; i++ {
		u := int32(i*3%59) + 1
		v := u + 1 + int32(i%int(60-u))
		if err := xg.InsertArc(u, v); err != nil {
			t.Fatalf("greedy InsertArc(%d,%d): %v", u, v, err)
		}
		if err := xk.InsertArc(u, v); err != nil {
			t.Fatalf("kt InsertArc(%d,%d): %v", u, v, err)
		}
	}
	compareIndexes(t, xg, xk, "post-insert")
}

// TestKTInsertArcMerge exercises the in-place SCC collapse on a KT index:
// a cycle-creating insert must merge components identically under both
// decompositions.
func TestKTInsertArcMerge(t *testing.T) {
	n, arcs := gridArcs(6, 8, 2, 3)
	g := graph.New(n, arcs)
	xg := mustBuild(t, g)
	xk := mustBuildKT(t, g, 2)
	// A back arc from the last row to the first closes a long cycle.
	u, v := int32(n), int32(1)
	if !xg.Reach(v, u) {
		// Ensure the pair is actually cycle-creating for this seed.
		t.Fatalf("test graph: %d does not reach %d", v, u)
	}
	mg, err := xg.InsertArcMerge(u, v)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := xk.InsertArcMerge(u, v)
	if err != nil {
		t.Fatal(err)
	}
	if mg != mk {
		t.Fatalf("merged %d components under greedy, %d under kt", mg, mk)
	}
	compareIndexes(t, xg, xk, "post-merge")
}

// TestStatsDegenerateEmptyLabels is the regression test for the inspect
// divide-by-zero: Load accepts a k == n index of one-node chains whose
// labels are all empty (an arcless graph), and every derived Stats ratio
// must come back zero instead of dividing by zero or going NaN.
func TestStatsDegenerateEmptyLabels(t *testing.T) {
	g := graph.New(7, nil) // no arcs: 7 components, 7 one-node chains
	for _, build := range []func() *Index{
		func() *Index { return mustBuild(t, g) },
		func() *Index { return mustBuildKT(t, g, 2) },
	} {
		x := build()
		var buf bytes.Buffer
		if err := x.Save(&buf); err != nil {
			t.Fatal(err)
		}
		y, err := Load(&buf)
		if err != nil {
			t.Fatalf("degenerate k==n index rejected by Load: %v", err)
		}
		st := y.ComputeStats()
		if st.Chains != 7 || st.Components != 7 {
			t.Fatalf("degenerate stats: %+v", st)
		}
		if st.LabelEntries != 0 || st.AvgLabel != 0 || st.P50Label != 0 || st.P95Label != 0 || st.MaxLabel != 0 {
			t.Fatalf("empty labels produced nonzero label stats: %+v", st)
		}
		if st.BytesPerNode <= 0 || st.BytesPerNode != st.BytesPerNode {
			t.Fatalf("bytes/node %v on a degenerate index", st.BytesPerNode)
		}
	}
	// The fully empty graph (n = 0, no components at all) must not panic
	// either; every ratio reports zero.
	empty := mustBuild(t, graph.New(0, nil))
	st := empty.ComputeStats()
	if st.AvgLabel != 0 || st.P50Label != 0 || st.MaxLabel != 0 || st.BytesPerNode != 0 {
		t.Fatalf("empty-graph stats: %+v", st)
	}
	if _, err := BuildKT(graph.New(0, nil), KTOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestKTBuild5kGrid is the CI bench-smoke gate: the parallel KT build of a
// 5000-node wide rectangle-model grid must complete (well inside the CI
// step timeout) and still agree with the greedy decomposition on a probe
// sample.
func TestKTBuild5kGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("5k-node build")
	}
	n, arcs := gridArcs(10, 500, 3, 17)
	g := graph.New(n, arcs)
	xk := mustBuildKT(t, g, 4)
	xg := mustBuild(t, g)
	if xk.Chains() >= xg.Chains() {
		t.Fatalf("kt chains %d not below greedy %d on the 5k grid", xk.Chains(), xg.Chains())
	}
	for u := int32(1); u <= int32(n); u += 97 {
		for v := int32(1); v <= int32(n); v += 89 {
			if xk.Reach(u, v) != xg.Reach(u, v) {
				t.Fatalf("Reach(%d,%d) disagrees on the 5k grid", u, v)
			}
		}
	}
}

func ExampleBuildKT() {
	g := graph.New(4, []graph.Arc{{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}})
	x, _ := BuildKT(g, KTOptions{Parallelism: 2})
	fmt.Println(x.Builder(), x.Chains(), x.Reach(1, 4))
	// Output: kt 1 true
}
