package index

import (
	"bytes"
	"math/rand"
	"testing"

	"tcstudy/internal/graph"
)

// bfsReach computes the closure-semantics reach matrix (u reaches v via a
// path of length >= 1) by per-source BFS, the oracle InsertArcMerge is
// pinned against. Unlike graph.Closure it handles cycles.
func bfsReach(n int, arcs []graph.Arc) [][]bool {
	adj := make([][]int32, n+1)
	for _, a := range arcs {
		adj[a.From] = append(adj[a.From], a.To)
	}
	reach := make([][]bool, n+1)
	for u := 1; u <= n; u++ {
		seen := make([]bool, n+1)
		var queue []int32
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		reach[u] = seen
	}
	return reach
}

func checkAgainstOracle(t *testing.T, x *Index, n int, arcs []graph.Arc, ctx string) {
	t.Helper()
	want := bfsReach(n, arcs)
	for u := int32(1); u <= int32(n); u++ {
		for v := int32(1); v <= int32(n); v++ {
			if got := x.Reach(u, v); got != want[u][v] {
				t.Fatalf("%s: Reach(%d,%d) = %t, oracle %t", ctx, u, v, got, want[u][v])
			}
		}
		succ := x.Successors(u)
		cnt := 0
		for v := 1; v <= n; v++ {
			if want[u][v] {
				cnt++
			}
		}
		if len(succ) != cnt {
			t.Fatalf("%s: Successors(%d) has %d nodes, oracle %d (%v)", ctx, u, len(succ), cnt, succ)
		}
		for i, v := range succ {
			if !want[u][v] {
				t.Fatalf("%s: Successors(%d) wrongly includes %d", ctx, u, v)
			}
			if i > 0 && succ[i-1] >= v {
				t.Fatalf("%s: Successors(%d) not strictly ascending: %v", ctx, u, succ)
			}
		}
	}
}

func TestInsertArcMergeCollapsesCycle(t *testing.T) {
	g := diamond()
	x := mustBuild(t, g)
	merged, err := x.InsertArcMerge(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 3 {
		t.Fatalf("merged %d components, want 3 (2, 3 and 4 into 1's)", merged)
	}
	if x.Stale() {
		t.Fatal("cycle-collapsing insert left the index stale")
	}
	arcs := append(g.Arcs(), graph.Arc{From: 4, To: 1})
	checkAgainstOracle(t, x, 4, arcs, "after 4->1")

	st := x.ComputeStats()
	if st.Merged != 3 {
		t.Fatalf("stats report %d merged components, want 3", st.Merged)
	}
	if st.Generation != 1 {
		t.Fatalf("generation %d after one fold, want 1", st.Generation)
	}

	// The merged index keeps accepting work: an acyclic extension and a
	// second collapse into the existing merged component.
	// (Nodes 1..4 are now one SCC; there is nothing left to merge here,
	// so grow the graph view instead via redundant inserts.)
	if _, err := x.InsertArcMerge(2, 4); err != nil {
		t.Fatal(err)
	}
	arcs = append(arcs, graph.Arc{From: 2, To: 4})
	checkAgainstOracle(t, x, 4, arcs, "after redundant 2->4")
}

func TestInsertArcMergePartialCycle(t *testing.T) {
	// Path 1->2->3->4->5 plus a bystander 6->3. Arc 4->2 collapses {2,3,4}
	// but must leave 1, 5, 6 as they are, with 1 and 6 now reaching the
	// merged component and the merged component still reaching 5.
	g := graph.New(6, []graph.Arc{
		{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5},
		{From: 6, To: 3},
	})
	x := mustBuild(t, g)
	merged, err := x.InsertArcMerge(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 2 {
		t.Fatalf("merged %d components, want 2", merged)
	}
	arcs := append(g.Arcs(), graph.Arc{From: 4, To: 2})
	checkAgainstOracle(t, x, 6, arcs, "after 4->2")

	// A later cycle that swallows the already-merged component.
	if _, err := x.InsertArcMerge(5, 1); err != nil {
		t.Fatal(err)
	}
	arcs = append(arcs, graph.Arc{From: 5, To: 1})
	checkAgainstOracle(t, x, 6, arcs, "after 5->1")
}

func TestInsertArcMergeSelfLoopAndDeletePatches(t *testing.T) {
	g := diamond()
	x := mustBuild(t, g)
	if _, err := x.InsertArcMerge(3, 3); err != nil {
		t.Fatal(err)
	}
	if !x.Reach(3, 3) {
		t.Fatal("self-loop insert not recorded")
	}
	if err := x.DeleteSelfLoop(3); err != nil {
		t.Fatal(err)
	}
	if x.Reach(3, 3) {
		t.Fatal("self-loop delete not recorded")
	}
	// 1->4 is covered by 1->2->4, so deleting it is closure-preserving.
	if _, err := x.InsertArcMerge(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := x.DeleteRedundantArc(1, 4); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, x, 4, diamond().Arcs(), "after add+delete of redundant 1->4")
	if x.NumArcs() != 4 {
		t.Fatalf("NumArcs = %d after balanced insert/delete, want 4", x.NumArcs())
	}
}

// TestInsertArcMergeRandomSchedules drives seeded random insert schedules —
// roughly a third of them closing cycles — and pins the full reach matrix
// and successor sets to the BFS oracle after every insert.
func TestInsertArcMergeRandomSchedules(t *testing.T) {
	const n = 24
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var arcs []graph.Arc
		for u := int32(1); u < n; u++ {
			for d := int32(1); d <= 3; d++ {
				if u+d <= n && rng.Intn(2) == 0 {
					arcs = append(arcs, graph.Arc{From: u, To: u + d})
				}
			}
		}
		g := graph.New(n, arcs)
		x := mustBuild(t, g)
		cur := g.Arcs() // sorted, deduped
		for step := 0; step < 30; step++ {
			u, v := int32(rng.Intn(n)+1), int32(rng.Intn(n)+1)
			if _, err := x.InsertArcMerge(u, v); err != nil {
				t.Fatalf("seed %d step %d: InsertArcMerge(%d,%d): %v", seed, step, u, v, err)
			}
			cur = append(cur, graph.Arc{From: u, To: v})
			if step%5 == 4 || step == 29 {
				checkAgainstOracle(t, x, n, cur, "schedule")
			}
		}
		if x.Stale() {
			t.Fatalf("seed %d: merge path flagged stale", seed)
		}
	}
}

// TestMergedIndexSurvivesSaveLoad proves the on-disk format needs no
// extension for merged indexes: comp is canonical, absorbed components
// reload with empty member lists, and answers are unchanged.
func TestMergedIndexSurvivesSaveLoad(t *testing.T) {
	g := graph.New(6, []graph.Arc{
		{From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5},
		{From: 6, To: 3},
	})
	x := mustBuild(t, g)
	if _, err := x.InsertArcMerge(4, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	arcs := append(g.Arcs(), graph.Arc{From: 4, To: 2})
	checkAgainstOracle(t, y, 6, arcs, "reloaded merged index")
	// And the reloaded index keeps accepting merging inserts.
	if _, err := y.InsertArcMerge(5, 1); err != nil {
		t.Fatal(err)
	}
	arcs = append(arcs, graph.Arc{From: 5, To: 1})
	checkAgainstOracle(t, y, 6, arcs, "reloaded then merged again")
}
