package index

import (
	"errors"
	"fmt"
)

// ErrStale is returned by InsertArc for an insert the index cannot fold in
// place: the arc closes a cycle among condensation components, so every
// stored topological invariant (component identity, chain positions) is
// violated. The index is flagged stale; callers fall back to the engine
// path or rebuild.
var ErrStale = errors.New("index: insert creates a component cycle; index is stale")

// InsertArc folds the arc (u,v) into the index in place. Inserts that
// respect the condensation's topological order — they do not make v's
// component reach u's — cost one label-merge sweep over the components
// that reach u; the chain structure is untouched, because reachability
// only grows and chain positions keep ordering it. A cycle-creating insert
// flags the index stale and returns ErrStale. A stale index rejects all
// further inserts.
func (x *Index) InsertArc(u, v int32) error {
	if u < 1 || v < 1 || int(u) > x.n || int(v) > x.n {
		return fmt.Errorf("index: arc (%d,%d) outside 1..%d", u, v, x.n)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.stale {
		return ErrStale
	}
	if u == v {
		x.selfLoop.Add(u)
		x.numArcs++
		x.gen++
		return nil
	}
	cu, cv := x.comp[u], x.comp[v]
	if cu == cv {
		// Both endpoints already share a (non-trivial) component; the arc
		// adds no reachability.
		x.numArcs++
		x.gen++
		return nil
	}
	if x.dagReach(cv, cu) {
		// v already reaches u, so u->v merges components: order-violating.
		x.stale = true
		return ErrStale
	}
	x.numArcs++
	x.gen++
	if x.dagReach(cu, cv) {
		return nil // already reachable; labels are transitively closed
	}
	x.foldAcyclicLocked(cu, cv)
	return nil
}

// foldAcyclicLocked merges the closure contribution of the new arc
// cu -> cv (cv itself plus everything cv reaches) into every live
// component that reaches cu, cu included. Membership is answered by the
// index itself in O(log k) per candidate.
func (x *Index) foldAcyclicLocked(cu, cv int32) {
	dense := make([]int32, x.numChains)
	for i := range dense {
		dense[i] = -1
	}
	var touched []int32
	touched = updateMin(dense, touched, x.chainID[cv], x.chainPos[cv])
	lv := &x.labels[cv]
	for j, ch := range lv.chains {
		touched = updateMin(dense, touched, ch, lv.minPos[j])
	}
	cont := packLabel(dense, touched, x.numChains)

	for d := int32(1); d < int32(len(x.labels)); d++ {
		if !x.live(d) {
			continue
		}
		if d == cu || x.dagReachLabel(d, cu) {
			x.mergeLabel(d, &cont)
		}
	}
	x.recomputeSucc()
}

// mergeLabel folds contribution cont into component d's label: a sorted
// two-pointer merge taking the position minimum on common chains.
func (x *Index) mergeLabel(d int32, cont *label) {
	ld := &x.labels[d]
	if !ld.set.Intersects(cont.set) {
		// Disjoint chain sets: plain concatenation-merge, no minimums to
		// reconcile — the common case when the insert bridges two regions.
		merged := make([]int32, 0, len(ld.chains)+len(cont.chains))
		pos := make([]int32, 0, len(ld.chains)+len(cont.chains))
		i, j := 0, 0
		for i < len(ld.chains) && j < len(cont.chains) {
			if ld.chains[i] < cont.chains[j] {
				merged, pos = append(merged, ld.chains[i]), append(pos, ld.minPos[i])
				i++
			} else {
				merged, pos = append(merged, cont.chains[j]), append(pos, cont.minPos[j])
				j++
			}
		}
		merged = append(merged, ld.chains[i:]...)
		pos = append(pos, ld.minPos[i:]...)
		merged = append(merged, cont.chains[j:]...)
		pos = append(pos, cont.minPos[j:]...)
		ld.chains, ld.minPos = merged, pos
		ld.set.Or(cont.set)
		return
	}
	merged := make([]int32, 0, len(ld.chains)+len(cont.chains))
	pos := make([]int32, 0, len(ld.chains)+len(cont.chains))
	i, j := 0, 0
	for i < len(ld.chains) || j < len(cont.chains) {
		switch {
		case j == len(cont.chains) || (i < len(ld.chains) && ld.chains[i] < cont.chains[j]):
			merged, pos = append(merged, ld.chains[i]), append(pos, ld.minPos[i])
			i++
		case i == len(ld.chains) || cont.chains[j] < ld.chains[i]:
			merged, pos = append(merged, cont.chains[j]), append(pos, cont.minPos[j])
			j++
		default: // same chain: keep the earlier position
			p := ld.minPos[i]
			if cont.minPos[j] < p {
				p = cont.minPos[j]
			}
			merged, pos = append(merged, ld.chains[i]), append(pos, p)
			i++
			j++
		}
	}
	ld.chains, ld.minPos = merged, pos
	ld.set.Or(cont.set)
}
