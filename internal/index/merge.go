package index

import (
	"fmt"
	"sort"
)

// InsertArcMerge folds the arc (u,v) into the index in place like
// InsertArc, but where InsertArc gives up on a cycle-creating insert by
// flagging the index stale, InsertArcMerge collapses the new strongly
// connected component in place and keeps serving. It returns the number of
// components merged away (0 for acyclicity-preserving inserts).
//
// The collapse follows the Hanauer & Henzinger observation that an insert
// (u,v) with v's component already reaching u's creates exactly one new
// SCC: {cu, cv} plus every component on a cv ~> cu path. The cycle's sink
// cu becomes the representative: every member of the cycle reached cu
// before the insert (that is the membership condition), so every label in
// the index that reaches any cycle member already probes true for cu — no
// label rewriting is needed for paths *into* the merged component. The
// absorbed components keep their chain slots (labels may still point at
// them, and positions after them on a chain stay reachable) but lose their
// member lists, which is how live() and Successors skip them.
func (x *Index) InsertArcMerge(u, v int32) (int, error) {
	if u < 1 || v < 1 || int(u) > x.n || int(v) > x.n {
		return 0, fmt.Errorf("index: arc (%d,%d) outside 1..%d", u, v, x.n)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.stale {
		return 0, ErrStale
	}
	if u == v {
		x.selfLoop.Add(u)
		x.numArcs++
		x.gen++
		return 0, nil
	}
	cu, cv := x.comp[u], x.comp[v]
	if cu == cv {
		x.numArcs++
		x.gen++
		return 0, nil
	}
	if !x.dagReach(cv, cu) {
		// Topological order preserved: the regular in-place fold applies.
		x.numArcs++
		x.gen++
		if !x.dagReach(cu, cv) {
			x.foldAcyclicLocked(cu, cv)
		}
		return 0, nil
	}

	// v's component reaches u's, so (u,v) closes a cycle. Collect the new
	// SCC: cu, cv, and every live component between them.
	cycle := []int32{cu, cv}
	for d := int32(1); d < int32(len(x.labels)); d++ {
		if d == cu || d == cv || !x.live(d) {
			continue
		}
		if x.dagReach(cv, d) && x.dagReach(d, cu) {
			cycle = append(cycle, d)
		}
	}
	x.mergeComponentsLocked(cu, cycle)
	x.numArcs++
	x.gen++
	return len(cycle) - 1, nil
}

// mergeComponentsLocked collapses the components in cycle (cu included,
// first) into the representative cu.
func (x *Index) mergeComponentsLocked(cu int32, cycle []int32) {
	// The merged component's closure is the union of the members' labels
	// plus the members' own chain points: inside the new SCC everything
	// reaches everything, so each member's point and closure belong to all.
	dense := make([]int32, x.numChains)
	for i := range dense {
		dense[i] = -1
	}
	var touched []int32
	for _, d := range cycle {
		touched = updateMin(dense, touched, x.chainID[d], x.chainPos[d])
		ld := &x.labels[d]
		for j, ch := range ld.chains {
			touched = updateMin(dense, touched, ch, ld.minPos[j])
		}
	}
	cont := packLabel(dense, touched, x.numChains)
	x.labels[cu] = cont

	// Move every absorbed component's members into the representative and
	// retire its slot.
	members := append([]int32(nil), x.members[cu]...)
	for _, d := range cycle {
		if d == cu {
			continue
		}
		for _, node := range x.members[d] {
			x.comp[node] = cu
		}
		members = append(members, x.members[d]...)
		x.members[d] = nil
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	x.members[cu] = members

	// Everything that reached cu before the insert now reaches the whole
	// merged closure (its path enters the cycle, the cycle reaches cont).
	// That is exactly the ancestor set of any cycle member, because every
	// cycle member reached cu pre-insert.
	for d := int32(1); d < int32(len(x.labels)); d++ {
		if d == cu || !x.live(d) {
			continue
		}
		if x.dagReachLabel(d, cu) {
			x.mergeLabel(d, &cont)
		}
	}
	x.recomputeSucc()
}

// DeleteSelfLoop removes a self-arc (u,u) from the index in place. A
// self-arc only ever decides whether u reaches itself, never cross-node
// reachability, so the patch is always safe: clear the self-loop bit. If u
// sits in a non-trivial component, Reach(u,u) stays true through the
// component, matching the graph.
func (x *Index) DeleteSelfLoop(u int32) error {
	if u < 1 || int(u) > x.n {
		return fmt.Errorf("index: node %d outside 1..%d", u, x.n)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.stale {
		return ErrStale
	}
	x.selfLoop.Remove(u)
	x.numArcs--
	x.gen++
	return nil
}

// DeleteRedundantArc records the removal of an arc (u,v) that the caller
// has certified closure-preserving: u still reaches v in the mutated graph
// through another path, so no stored label changes. Only the arc count
// moves. The index trusts the certificate — deleting a closure-shrinking
// arc this way corrupts answers; such deletes must go through a rebuild
// instead (see internal/dynamic).
func (x *Index) DeleteRedundantArc(u, v int32) error {
	if u < 1 || v < 1 || int(u) > x.n || int(v) > x.n {
		return fmt.Errorf("index: arc (%d,%d) outside 1..%d", u, v, x.n)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.stale {
		return ErrStale
	}
	x.numArcs--
	x.gen++
	return nil
}
