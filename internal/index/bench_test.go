package index

import (
	"testing"

	"tcstudy/internal/graph"
)

// Decomposition-quality benchmarks: greedy vs Kritikakis–Tollis on the
// paper's rectangle-model shapes. "wide" is a 20-level grid of 250 nodes
// per level (W = |G|/H ≈ 475 ≫ H ≈ 10, the regime where greedy k
// balloons); "deep" is its transpose. Build benchmarks report chains,
// label entries and the exact saved-file size alongside wall time; probe
// benchmarks measure the serving cost the chain count drives.

type benchShape struct {
	name       string
	rows, cols int
}

var benchShapes = []benchShape{
	{"wide", 20, 250},
	{"deep", 250, 20},
}

func benchGraph(b *testing.B, s benchShape) *graph.Graph {
	b.Helper()
	n, arcs := gridArcs(s.rows, s.cols, 3, 42)
	return graph.New(n, arcs)
}

func reportShape(b *testing.B, x *Index) {
	st := x.ComputeStats()
	b.ReportMetric(float64(st.Chains), "chains")
	b.ReportMetric(float64(st.LabelEntries), "label-entries")
	b.ReportMetric(float64(st.FileBytes), "file-bytes")
}

func BenchmarkDecompositionBuild(b *testing.B) {
	for _, s := range benchShapes {
		g := benchGraph(b, s)
		b.Run(s.name+"/greedy", func(b *testing.B) {
			var x *Index
			for i := 0; i < b.N; i++ {
				x, _ = Build(g)
			}
			reportShape(b, x)
		})
		b.Run(s.name+"/kt-serial", func(b *testing.B) {
			var x *Index
			for i := 0; i < b.N; i++ {
				x, _ = BuildKT(g, KTOptions{Parallelism: 1})
			}
			reportShape(b, x)
		})
		b.Run(s.name+"/kt-par4", func(b *testing.B) {
			var x *Index
			for i := 0; i < b.N; i++ {
				x, _ = BuildKT(g, KTOptions{Parallelism: 4})
			}
			reportShape(b, x)
		})
	}
}

// benchPairs yields a fixed pseudo-random probe sequence so both builders
// answer the identical query stream.
func benchPairs(n int) [][2]int32 {
	rng := uint64(12345)
	pairs := make([][2]int32, 1024)
	for i := range pairs {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		pairs[i] = [2]int32{int32(z%uint64(n)) + 1, int32((z>>32)%uint64(n)) + 1}
	}
	return pairs
}

func BenchmarkDecompositionReach(b *testing.B) {
	for _, s := range benchShapes {
		g := benchGraph(b, s)
		pairs := benchPairs(g.N())
		for _, builder := range []struct {
			name  string
			build func() (*Index, error)
		}{
			{BuilderGreedy, func() (*Index, error) { return Build(g) }},
			{BuilderKT, func() (*Index, error) { return BuildKT(g, KTOptions{Parallelism: 4}) }},
		} {
			x, err := builder.build()
			if err != nil {
				b.Fatal(err)
			}
			b.Run(s.name+"/"+builder.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p := pairs[i%len(pairs)]
					x.Reach(p[0], p[1])
				}
			})
		}
	}
}

func BenchmarkDecompositionSuccessors(b *testing.B) {
	for _, s := range benchShapes {
		g := benchGraph(b, s)
		pairs := benchPairs(g.N())
		for _, builder := range []struct {
			name  string
			build func() (*Index, error)
		}{
			{BuilderGreedy, func() (*Index, error) { return Build(g) }},
			{BuilderKT, func() (*Index, error) { return BuildKT(g, KTOptions{Parallelism: 4}) }},
		} {
			x, err := builder.build()
			if err != nil {
				b.Fatal(err)
			}
			b.Run(s.name+"/"+builder.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					x.Successors(pairs[i%len(pairs)][0])
				}
			})
		}
	}
}
