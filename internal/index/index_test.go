package index

import (
	"testing"

	"tcstudy/internal/graph"
)

// diamond is the canonical 4-node DAG: 1 -> {2,3} -> 4.
func diamond() *graph.Graph {
	return graph.New(4, []graph.Arc{{From: 1, To: 2}, {From: 1, To: 3}, {From: 2, To: 4}, {From: 3, To: 4}})
}

func mustBuild(t *testing.T, g *graph.Graph) *Index {
	t.Helper()
	x, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// reachAgainstClosure checks every pair against the graph package's
// reference closure (DAG inputs only).
func reachAgainstClosure(t *testing.T, g *graph.Graph, x *Index) {
	t.Helper()
	succ, err := g.Closure()
	if err != nil {
		t.Fatal(err)
	}
	n := int32(g.N())
	for u := int32(1); u <= n; u++ {
		for v := int32(1); v <= n; v++ {
			want := succ[u].Has(v)
			if got := x.Reach(u, v); got != want {
				t.Fatalf("Reach(%d,%d) = %t, closure says %t", u, v, got, want)
			}
		}
	}
}

func TestReachDiamond(t *testing.T) {
	g := diamond()
	x := mustBuild(t, g)
	reachAgainstClosure(t, g, x)
	if x.Reach(1, 1) {
		t.Fatal("acyclic node reaches itself")
	}
	if x.Reach(0, 1) || x.Reach(1, 5) {
		t.Fatal("out-of-range nodes reported reachable")
	}
	if x.N() != 4 || x.NumArcs() != 4 {
		t.Fatalf("shape N=%d arcs=%d", x.N(), x.NumArcs())
	}
}

func TestReachCyclicGraph(t *testing.T) {
	// 1 <-> 2 form a component; 3 hangs off 2; 4 is isolated with a
	// self-loop; 5 is isolated without one.
	g := graph.New(5, []graph.Arc{
		{From: 1, To: 2}, {From: 2, To: 1}, {From: 2, To: 3},
		{From: 4, To: 4},
	})
	x := mustBuild(t, g)
	for _, c := range []struct {
		u, v int32
		want bool
	}{
		{1, 1, true}, {1, 2, true}, {2, 1, true}, {2, 2, true},
		{1, 3, true}, {2, 3, true}, {3, 1, false}, {3, 3, false},
		{4, 4, true}, {5, 5, false}, {4, 1, false}, {1, 4, false},
	} {
		if got := x.Reach(c.u, c.v); got != c.want {
			t.Fatalf("Reach(%d,%d) = %t, want %t", c.u, c.v, got, c.want)
		}
	}
	if got := x.Successors(1); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Successors(1) = %v, want [1 2 3]", got)
	}
	if got := x.Successors(4); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Successors(4) = %v, want [4]", got)
	}
	if got := x.Successors(5); len(got) != 0 {
		t.Fatalf("Successors(5) = %v, want empty", got)
	}
}

func TestSuccessorsMatchClosure(t *testing.T) {
	g := graph.New(7, []graph.Arc{
		{From: 1, To: 3}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 3, To: 5},
		{From: 5, To: 6}, {From: 4, To: 6}, {From: 6, To: 7},
	})
	x := mustBuild(t, g)
	succ, err := g.Closure()
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(1); u <= 7; u++ {
		got := x.Successors(u)
		if len(got) != succ[u].Count() {
			t.Fatalf("Successors(%d) has %d nodes, closure %d", u, len(got), succ[u].Count())
		}
		for _, v := range got {
			if !succ[u].Has(v) {
				t.Fatalf("Successors(%d) wrongly includes %d", u, v)
			}
		}
	}
}

func TestInsertArcInPlace(t *testing.T) {
	// Two disjoint paths 1->2->3 and 4->5->6; bridge them with 3->4.
	g := graph.New(6, []graph.Arc{
		{From: 1, To: 2}, {From: 2, To: 3}, {From: 4, To: 5}, {From: 5, To: 6},
	})
	x := mustBuild(t, g)
	if x.Reach(1, 6) {
		t.Fatal("disjoint halves reachable before insert")
	}
	if err := x.InsertArc(3, 4); err != nil {
		t.Fatal(err)
	}
	if x.Stale() {
		t.Fatal("acyclic insert flagged stale")
	}
	g2 := graph.New(6, append(g.Arcs(), graph.Arc{From: 3, To: 4}))
	reachAgainstClosure(t, g2, x)
	if x.NumArcs() != 5 {
		t.Fatalf("NumArcs = %d after insert, want 5", x.NumArcs())
	}
	// A redundant insert and a duplicate insert change nothing.
	if err := x.InsertArc(1, 6); err != nil {
		t.Fatal(err)
	}
	reachAgainstClosure(t, g2, x)
}

func TestInsertArcBackwardButAcyclic(t *testing.T) {
	// 1->2 and 3 isolated: the arc 3->1 runs against node numbering (and
	// likely the stored topological order) but creates no cycle, so it
	// must be folded in place.
	g := graph.New(3, []graph.Arc{{From: 1, To: 2}})
	x := mustBuild(t, g)
	if err := x.InsertArc(3, 1); err != nil {
		t.Fatal(err)
	}
	if !x.Reach(3, 2) || !x.Reach(3, 1) || x.Reach(1, 3) {
		t.Fatal("backward acyclic insert mishandled")
	}
}

func TestInsertArcSelfLoop(t *testing.T) {
	g := diamond()
	x := mustBuild(t, g)
	if err := x.InsertArc(2, 2); err != nil {
		t.Fatal(err)
	}
	if !x.Reach(2, 2) {
		t.Fatal("self-loop not recorded")
	}
	if x.Reach(3, 3) || x.Stale() {
		t.Fatal("self-loop leaked or marked stale")
	}
}

func TestInsertArcCycleGoesStale(t *testing.T) {
	g := diamond()
	x := mustBuild(t, g)
	if err := x.InsertArc(4, 1); err != ErrStale {
		t.Fatalf("cycle-creating insert returned %v, want ErrStale", err)
	}
	if !x.Stale() {
		t.Fatal("index not stale after cycle insert")
	}
	// Stale indexes reject all further inserts but still answer from the
	// pre-insert state.
	if err := x.InsertArc(1, 4); err != ErrStale {
		t.Fatalf("stale index accepted insert: %v", err)
	}
	if !x.Reach(1, 4) || x.Reach(4, 1) {
		t.Fatal("stale index lost its pre-insert answers")
	}
}

func TestInsertArcRejectsOutOfRange(t *testing.T) {
	x := mustBuild(t, diamond())
	if err := x.InsertArc(0, 2); err == nil || err == ErrStale {
		t.Fatalf("InsertArc(0,2) = %v", err)
	}
	if err := x.InsertArc(2, 9); err == nil || err == ErrStale {
		t.Fatalf("InsertArc(2,9) = %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	x := mustBuild(t, diamond())
	st := x.ComputeStats()
	if st.Nodes != 4 || st.Arcs != 4 || st.Components != 4 {
		t.Fatalf("stats %+v", st)
	}
	if st.Chains < 1 || st.Chains > 4 {
		t.Fatalf("implausible chain count %d", st.Chains)
	}
	if st.Stale {
		t.Fatal("fresh index reported stale")
	}
	if st.AvgLabel <= 0 {
		t.Fatalf("AvgLabel = %f", st.AvgLabel)
	}
}
