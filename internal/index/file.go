package index

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"tcstudy/internal/bitset"
)

// On-disk format (all integers little-endian). docs/INDEX.md carries the
// narrative description.
//
//	magic   "TCIX"                                   4 bytes
//	version u32 = 1
//	header  u32 n, u32 K, u32 numChains, u32 numArcs, u32 flags (bit0 stale)
//	comp    n   x i32       condensation map, nodes 1..n
//	chains  K   x i32       chainID per DAG node (0-based)
//	        K   x i32       chainPos per DAG node
//	selfLp  u32 words, words x u64   self-loop bitset over nodes 0..n
//	labels  K entries: u32 count, count x (i32 chain, i32 minPos)
//	crc32   u32             IEEE CRC of every preceding byte
//
// Load rejects a wrong magic, an unknown version, a CRC mismatch
// (truncation, bit flips) and any structurally inconsistent section.

const (
	fileMagic   = "TCIX"
	fileVersion = 1

	flagStale = 1 << 0
	// flagKT records that the chains came from the Kritikakis–Tollis
	// builder (BuildKT). Readers that predate the flag ignore unknown
	// bits, and the chain sections are structurally identical either way,
	// so this is not a format bump — the same version 1 loader accepts
	// both decompositions.
	flagKT = 1 << 1
)

// Save writes the index to w in the versioned binary format.
func (x *Index) Save(w io.Writer) error {
	x.mu.RLock()
	defer x.mu.RUnlock()
	k := len(x.labels) - 1
	buf := make([]byte, 0, 64+4*x.n+8*k)
	buf = append(buf, fileMagic...)
	buf = le32(buf, fileVersion)
	buf = le32(buf, uint32(x.n))
	buf = le32(buf, uint32(k))
	buf = le32(buf, uint32(x.numChains))
	buf = le32(buf, uint32(x.numArcs))
	var flags uint32
	if x.stale {
		flags |= flagStale
	}
	if x.builder == BuilderKT {
		flags |= flagKT
	}
	buf = le32(buf, flags)
	for v := 1; v <= x.n; v++ {
		buf = le32(buf, uint32(x.comp[v]))
	}
	for d := 1; d <= k; d++ {
		buf = le32(buf, uint32(x.chainID[d]))
	}
	for d := 1; d <= k; d++ {
		buf = le32(buf, uint32(x.chainPos[d]))
	}
	words := x.selfLoop.Words()
	buf = le32(buf, uint32(len(words)))
	for _, w64 := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w64)
	}
	for d := 1; d <= k; d++ {
		l := &x.labels[d]
		buf = le32(buf, uint32(len(l.chains)))
		for i := range l.chains {
			buf = le32(buf, uint32(l.chains[i]))
			buf = le32(buf, uint32(l.minPos[i]))
		}
	}
	buf = le32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// SaveFile writes the index to path, replacing any existing file.
func (x *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := x.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func le32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// savedBytesLocked computes the exact size Save would write, mirroring its
// layout: magic + version + header, the comp/chain/position columns, the
// self-loop bitset, every label, and the CRC trailer. Callers hold mu.
func (x *Index) savedBytesLocked() int64 {
	k := len(x.labels) - 1
	size := int64(4 + 4 + 5*4) // magic, version, header words
	size += int64(4 * x.n)     // comp column
	size += int64(8 * k)       // chainID + chainPos columns
	size += 4                  // self-loop word count
	size += int64(8 * len(x.selfLoop.Words()))
	for d := 1; d <= k; d++ {
		size += int64(4 + 8*len(x.labels[d].chains))
	}
	return size + 4 // CRC trailer
}

// Load reads an index in the format written by Save, verifying the magic,
// version, checksum and the structural invariants of every section.
func Load(r io.Reader) (*Index, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if len(raw) < len(fileMagic)+4+4 {
		return nil, fmt.Errorf("index: load: file truncated (%d bytes)", len(raw))
	}
	if string(raw[:4]) != fileMagic {
		return nil, fmt.Errorf("index: load: bad magic %q", raw[:4])
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("index: load: checksum mismatch (file %08x, computed %08x): corrupt or truncated", want, got)
	}
	c := &cursor{b: body, off: 4}
	if v := c.u32(); v != fileVersion {
		return nil, fmt.Errorf("index: load: unsupported version %d (want %d)", v, fileVersion)
	}
	n := int(c.u32())
	k := int(c.u32())
	numChains := int(c.u32())
	numArcs := int(c.u32())
	flags := c.u32()
	builder := BuilderGreedy
	if flags&flagKT != 0 {
		builder = BuilderKT
	}
	if c.err == nil && (n < 0 || k < 0 || k > n || numChains > k || numArcs < 0) {
		return nil, fmt.Errorf("index: load: inconsistent header (n=%d K=%d chains=%d)", n, k, numChains)
	}
	// The fixed-width sections alone need 4 bytes per node plus 12 per
	// component; a header promising more than the file holds is corrupt
	// (and must not drive allocations).
	if c.err == nil && 4*n+12*k > len(body)-c.off {
		return nil, fmt.Errorf("index: load: header promises %d nodes / %d components but only %d bytes follow", n, k, len(body)-c.off)
	}

	x := &Index{
		n:         n,
		numArcs:   numArcs,
		numChains: numChains,
		builder:   builder,
		stale:     flags&flagStale != 0,
		comp:      make([]int32, n+1),
		chainID:   make([]int32, k+1),
		chainPos:  make([]int32, k+1),
		labels:    make([]label, k+1),
	}
	for v := 1; v <= n; v++ {
		x.comp[v] = c.i32()
		if c.err == nil && (x.comp[v] < 1 || int(x.comp[v]) > k) {
			return nil, fmt.Errorf("index: load: node %d mapped to component %d outside 1..%d", v, x.comp[v], k)
		}
	}
	for d := 1; d <= k; d++ {
		x.chainID[d] = c.i32()
		if c.err == nil && (x.chainID[d] < 0 || int(x.chainID[d]) >= numChains) {
			return nil, fmt.Errorf("index: load: component %d on chain %d outside 0..%d", d, x.chainID[d], numChains-1)
		}
	}
	for d := 1; d <= k; d++ {
		x.chainPos[d] = c.i32()
		if c.err == nil && x.chainPos[d] < 0 {
			return nil, fmt.Errorf("index: load: negative chain position for component %d", d)
		}
	}
	nwords := int(c.u32())
	if c.err == nil && nwords != (n+1+63)/64 {
		return nil, fmt.Errorf("index: load: self-loop bitset has %d words, want %d", nwords, (n+1+63)/64)
	}
	if c.err == nil && 8*nwords > len(body)-c.off {
		return nil, fmt.Errorf("index: load: self-loop section truncated")
	}
	words := make([]uint64, 0, max(nwords, 0))
	for i := 0; i < nwords && c.err == nil; i++ {
		words = append(words, c.u64())
	}
	x.selfLoop = bitset.FromWords(words)
	if c.err != nil {
		return nil, fmt.Errorf("index: load: %w", c.err)
	}

	// Chains must be an exact partition: every (chainID, chainPos) pair
	// lands in a distinct slot and no chain has holes.
	counts := make([]int32, numChains)
	for d := 1; d <= k; d++ {
		counts[x.chainID[d]]++
	}
	filled := make([][]bool, numChains)
	for ci := range filled {
		if counts[ci] == 0 {
			return nil, fmt.Errorf("index: load: chain %d is empty", ci)
		}
		filled[ci] = make([]bool, counts[ci])
	}
	for d := 1; d <= k; d++ {
		ci, p := x.chainID[d], x.chainPos[d]
		if p >= counts[ci] {
			return nil, fmt.Errorf("index: load: component %d at position %d of chain %d (length %d)", d, p, ci, counts[ci])
		}
		if filled[ci][p] {
			return nil, fmt.Errorf("index: load: two components at position %d of chain %d", p, ci)
		}
		filled[ci][p] = true
	}
	x.rebuildChains()

	for d := 1; d <= k; d++ {
		cnt := int(c.u32())
		if c.err != nil {
			break
		}
		if cnt < 0 || cnt > numChains {
			return nil, fmt.Errorf("index: load: label %d has %d entries over %d chains", d, cnt, numChains)
		}
		l := label{
			set:    bitset.New(numChains),
			chains: make([]int32, cnt),
			minPos: make([]int32, cnt),
		}
		for i := 0; i < cnt; i++ {
			l.chains[i] = c.i32()
			l.minPos[i] = c.i32()
			if c.err != nil {
				break
			}
			if l.chains[i] < 0 || int(l.chains[i]) >= numChains {
				return nil, fmt.Errorf("index: load: label %d references chain %d", d, l.chains[i])
			}
			if i > 0 && l.chains[i] <= l.chains[i-1] {
				return nil, fmt.Errorf("index: load: label %d chains not strictly ascending", d)
			}
			if l.minPos[i] < 0 || l.minPos[i] >= int32(len(x.chains[l.chains[i]])) {
				return nil, fmt.Errorf("index: load: label %d position %d outside chain %d", d, l.minPos[i], l.chains[i])
			}
			l.set.Add(l.chains[i])
		}
		x.labels[d] = l
	}
	if c.err != nil {
		return nil, fmt.Errorf("index: load: %w", c.err)
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("index: load: %d trailing bytes", len(body)-c.off)
	}
	x.members = make([][]int32, k+1)
	for v := int32(1); v <= int32(n); v++ {
		x.members[x.comp[v]] = append(x.members[x.comp[v]], v)
	}
	x.recomputeSucc()
	return x, nil
}

// LoadFile reads an index file written by SaveFile.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// cursor is an error-latching little-endian reader over one byte slice.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.err = fmt.Errorf("section truncated at byte %d", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) i32() int32 { return int32(c.u32()) }

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.err = fmt.Errorf("section truncated at byte %d", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}
