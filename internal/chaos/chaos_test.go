package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tcstudy/internal/core"
	"tcstudy/internal/faultdisk"
	"tcstudy/internal/pagedisk"
)

// differentialGrid builds the clean-run case grid: five graph shapes, each
// at several seeds, alternating source sets and ILIMIT settings, at two
// pool sizes. Every case carries a distinct graph seed, so the full grid
// exercises 50 different random DAGs. Short mode keeps one seed per shape.
func differentialGrid(short bool) []Case {
	shapes := []struct{ n, f, l int }{
		{60, 3, 15},  // small and sparse
		{100, 4, 25}, // the paper's default shape, scaled down
		{150, 5, 40}, // denser, longer paths
		{80, 6, 10},  // tight locality: heavy duplication
		{120, 2, 60}, // loose locality: scattered pages
	}
	seeds := 5
	if short {
		seeds = 1
	}
	var cases []Case
	for si, sh := range shapes {
		for k := 0; k < seeds; k++ {
			srcs := 0
			if k%2 == 1 {
				srcs = 3 // alternate full closure and partial closure
			}
			ilimit := 0.0
			if k%3 == 2 {
				ilimit = 0.4
			}
			for pi, m := range []int{5, 12} {
				cases = append(cases, Case{
					Seed:        int64(1 + si*1000 + k*100 + pi*10),
					Nodes:       sh.n,
					OutDegree:   sh.f,
					Locality:    sh.l,
					Sources:     srcs,
					BufferPages: m,
					ILIMIT:      ilimit,
				})
			}
		}
	}
	return cases
}

// TestDifferentialCleanGrid is the harness's core claim: all eight
// candidate algorithms agree with the independent BFS oracle on every
// graph in the grid (50 distinct seeded DAGs in full mode), and HYB at
// ILIMIT=0 degenerates to BTC exactly.
func TestDifferentialCleanGrid(t *testing.T) {
	cases := differentialGrid(testing.Short())
	if !testing.Short() && len(cases) < 50 {
		t.Fatalf("grid has %d cases, want at least 50", len(cases))
	}
	for _, c := range cases {
		if err := RunClean(c); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestDifferentialFaultSchedule verifies the acceptance contract for
// scripted faults: a scheduled read failure surfaces as a clean,
// transient, per-query error — no panic, no wrong answer — and the same
// engine session answers correctly afterwards.
func TestDifferentialFaultSchedule(t *testing.T) {
	c := Case{Seed: 42, Nodes: 120, OutDegree: 4, Locality: 30, BufferPages: 8}
	g, db, sources, err := c.materialize()
	if err != nil {
		t.Fatal(err)
	}
	want := Oracle(c.Nodes, g.Arcs(), sources)

	sched, err := faultdisk.ParseSchedule("read@7")
	if err != nil {
		t.Fatal(err)
	}
	// Wrap before opening the session: the session's pool binds to the
	// store it sees at creation time.
	fd := faultdisk.Wrap(db.Store(), faultdisk.Options{Schedule: sched})
	db.SwapStore(fd)
	sess, err := core.NewSession(db, c.config())
	if err != nil {
		t.Fatal(err)
	}

	_, err = sess.Run(core.BTC, core.Query{})
	if err == nil {
		t.Fatalf("case {%s} faults {%s}: scheduled read failure did not surface", c, fd.Options())
	}
	if !pagedisk.IsTransient(err) {
		t.Fatalf("case {%s} faults {%s}: error is not transient: %v", c, fd.Options(), err)
	}
	if !errors.Is(err, faultdisk.ErrInjected) {
		t.Fatalf("case {%s} faults {%s}: error does not unwrap to ErrInjected: %v", c, fd.Options(), err)
	}
	if got := sess.Faults(); got != 1 {
		t.Fatalf("session recorded %d faults, want 1", got)
	}

	// The schedule named read #7 only; the sequence counter has moved
	// past it, so the same session must now answer — and correctly.
	res, err := sess.Run(core.BTC, core.Query{})
	if err != nil {
		t.Fatalf("case {%s} faults {%s}: session unusable after fault: %v", c, fd.Options(), err)
	}
	if err := diff(res.Successors, want); err != nil {
		t.Fatalf("case {%s} faults {%s}: post-fault answer wrong: %v", c, fd.Options(), err)
	}
	if fd.Counters().Injected != 1 {
		t.Fatalf("injected %d faults, want 1", fd.Counters().Injected)
	}
}

// TestDifferentialRandomFaults storms every candidate algorithm with
// seed-driven probabilistic read/write/alloc failures. Each run must
// either produce the oracle answer or fail with a clean transient error;
// any panic or silent wrong answer fails with replay coordinates.
func TestDifferentialRandomFaults(t *testing.T) {
	c := Case{Seed: 7, Nodes: 100, OutDegree: 4, Locality: 25, BufferPages: 6}
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for s := 1; s <= seeds; s++ {
		opts := faultdisk.Options{
			Seed:          int64(s),
			ReadFailProb:  0.01,
			WriteFailProb: 0.005,
			AllocFailProb: 0.002,
		}
		if err := RunFaulted(c, opts); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestDifferentialFaultReplay pins determinism: running the identical
// case under the identical fault options twice must inject the same
// faults and produce the same outcome. This is what makes a chaos
// failure's printed coordinates an actual repro.
func TestDifferentialFaultReplay(t *testing.T) {
	c := Case{Seed: 11, Nodes: 90, OutDegree: 5, Locality: 20, BufferPages: 5}
	opts := faultdisk.Options{Seed: 3, ReadFailProb: 0.02, WriteFailProb: 0.01}
	errText := func(err error) string {
		if err == nil {
			return "<nil>"
		}
		return err.Error()
	}
	first := errText(RunFaulted(c, opts))
	for i := 0; i < 3; i++ {
		if again := errText(RunFaulted(c, opts)); again != first {
			t.Fatalf("replay diverged:\n run 0: %s\n run %d: %s", first, i+1, again)
		}
	}
}

// TestMonotonePageIO asserts the stack-algorithm invariant: with ILIMIT=0
// (pool-independent reference strings), growing the buffer pool never
// increases any algorithm's total page I/O.
func TestMonotonePageIO(t *testing.T) {
	cases := []Case{
		{Seed: 21, Nodes: 100, OutDegree: 4, Locality: 25},
		{Seed: 22, Nodes: 120, OutDegree: 3, Locality: 50},
		{Seed: 23, Nodes: 80, OutDegree: 6, Locality: 12, Sources: 4},
	}
	sizes := []int{4, 6, 10, 16, 32}
	for _, c := range cases {
		if err := MonotoneIO(c, sizes); err != nil {
			t.Errorf("%v", err)
		}
	}
}

// TestSnapshotCorruptionDetected closes the durability loop: a saved
// database with any single snapshot file torn or bit-flipped must refuse
// to load — the CRC trailer turns silent corruption into a clean error.
func TestSnapshotCorruptionDetected(t *testing.T) {
	c := Case{Seed: 5, Nodes: 60, OutDegree: 3, Locality: 15}
	_, db, _, err := c.materialize()
	if err != nil {
		t.Fatal(err)
	}
	clean := t.TempDir()
	if err := core.SaveDatabase(db, clean); err != nil {
		t.Fatal(err)
	}
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for s := 1; s <= seeds; s++ {
		dir := t.TempDir()
		copyDir(t, clean, dir)
		cor, err := faultdisk.CorruptOne(filepath.Join(dir, "*.pg"), int64(s))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.OpenDatabase(dir); err == nil {
			t.Errorf("seed %d: database loaded despite corruption {%s}", s, cor)
		}
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
