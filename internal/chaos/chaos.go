// Package chaos is the differential/chaos harness for the transitive
// closure engine.
//
// It runs the paper's seven candidate algorithms (BTC, HYB, BJ, SRCH, SPN,
// JKB, JKB2) plus the dense-core bit-matrix strategy (BITM) over
// randomized DAGs and buffer configurations, cross-checking
// every answer against an in-memory BFS oracle that shares no code with the
// engine's storage or traversal machinery. Runs execute both clean and
// under seed-driven fault schedules (internal/faultdisk); under faults,
// every query must either return the exact oracle answer or fail with a
// clean, transient error — never panic, never answer wrongly.
//
// Beyond answer agreement, the harness asserts metric invariants the paper
// establishes:
//
//   - HYB with ILIMIT=0 degenerates to BTC exactly — identical page I/O,
//     tuple counts and storage-engine events (Section 4.1: the diagonal
//     block is the only difference);
//   - page I/O is monotone non-increasing in buffer size for the
//     algorithms whose page reference string is independent of the pool
//     (LRU is a stack algorithm, so more memory can only help).
//
// Every failure message embeds the Case and fault Options that reproduce
// the run; both render as flat strings so a CI log line is a local repro.
package chaos

import (
	"fmt"
	"sort"

	"tcstudy/internal/core"
	"tcstudy/internal/faultdisk"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/pagedisk"
)

// Candidates returns the algorithms under differential test: the paper's
// seven candidates plus the dense-core bit-matrix strategy, whose
// threshold fallback and SCC condensation ride through every oracle,
// fault and monotonicity run like any other algorithm.
func Candidates() []core.Algorithm {
	return []core.Algorithm{core.BTC, core.HYB, core.BJ, core.SRCH, core.SPN, core.JKB, core.JKB2, core.BITM}
}

// Case is one differential scenario: a seeded random DAG, a source set and
// an engine configuration. The zero values of Sources and ILIMIT mean a
// full-closure query and no diagonal block.
type Case struct {
	Seed        int64 // drives graph generation and source selection
	Nodes       int
	OutDegree   int
	Locality    int
	Sources     int // number of PTC source nodes; 0 = full closure
	BufferPages int
	ILIMIT      float64
}

// String renders the case for replay messages.
func (c Case) String() string {
	return fmt.Sprintf("seed=%d n=%d f=%d l=%d s=%d m=%d ilimit=%g",
		c.Seed, c.Nodes, c.OutDegree, c.Locality, c.Sources, c.BufferPages, c.ILIMIT)
}

// config is the engine configuration the case implies.
func (c Case) config() core.Config {
	return core.Config{BufferPages: c.BufferPages, ILIMIT: c.ILIMIT}
}

// materialize generates the case's graph, database and source set.
func (c Case) materialize() (*graph.Graph, *core.Database, []int32, error) {
	arcs, err := graphgen.Generate(graphgen.Params{
		Nodes: c.Nodes, OutDegree: c.OutDegree, Locality: c.Locality, Seed: c.Seed,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("chaos: case {%s}: generate: %w", c, err)
	}
	g := graph.New(c.Nodes, arcs)
	var sources []int32
	if c.Sources > 0 {
		sources = graphgen.SourceSet(c.Nodes, c.Sources, c.Seed+1)
	}
	return g, core.NewDatabase(c.Nodes, arcs), sources, nil
}

// Oracle computes the successor sets of the requested sources (every node
// when sources is empty) by plain breadth-first search over an adjacency
// list. It is deliberately independent of the engine, the storage layers
// and even the graph package's bitset closure: a third implementation that
// agrees only if the answer is right.
func Oracle(n int, arcs []graph.Arc, sources []int32) map[int32][]int32 {
	adj := make([][]int32, n+1)
	for _, a := range arcs {
		adj[a.From] = append(adj[a.From], a.To)
	}
	if len(sources) == 0 {
		sources = make([]int32, n)
		for i := range sources {
			sources[i] = int32(i + 1)
		}
	}
	out := make(map[int32][]int32, len(sources))
	seen := make([]int32, n+1) // visit stamp per node; 0 = never
	var stamp int32
	queue := make([]int32, 0, n)
	for _, src := range sources {
		if _, done := out[src]; done {
			continue
		}
		stamp++
		queue = queue[:0]
		queue = append(queue, src)
		var reach []int32
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if seen[w] == stamp {
					continue
				}
				seen[w] = stamp
				reach = append(reach, w)
				queue = append(queue, w)
			}
		}
		sort.Slice(reach, func(i, j int) bool { return reach[i] < reach[j] })
		out[src] = reach
	}
	return out
}

// diff compares one computed successor map against the oracle's. A node
// absent from got is an empty successor set (flat algorithms omit
// undiscovered sink nodes).
func diff(got, want map[int32][]int32) error {
	for v, w := range want {
		g := append([]int32(nil), got[v]...)
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		if len(g) != len(w) {
			return fmt.Errorf("node %d has %d successors, oracle says %d", v, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				return fmt.Errorf("successors of node %d differ at rank %d: got %d, oracle says %d", v, i, g[i], w[i])
			}
		}
	}
	return nil
}

// fingerprint summarizes every deterministic field of a metric record
// (times excluded). Two runs with identical fingerprints did identical
// work: same page I/O by phase, same buffer behaviour, same tuple and
// duplicate counts, same storage-engine events.
func fingerprint(m core.Metrics) string {
	return fmt.Sprintf("r=%+v c=%+v buf{h=%d m=%d e=%d} tg=%d dup=%d tc=%d stc=%d sf=%d lu=%d ac=%d am=%d magic{%d %d} store=%+v",
		m.Restructure, m.Compute,
		m.ComputeBuffer.Hits, m.ComputeBuffer.Misses, m.ComputeBuffer.Evicts,
		m.TuplesGenerated, m.Duplicates, m.DistinctTuples, m.SourceTuples,
		m.SuccessorsFetched, m.ListUnions, m.ArcsConsidered, m.ArcsMarked,
		m.MagicNodes, m.MagicArcs, m.Store)
}

// RunClean executes every candidate algorithm on the case and cross-checks
// each answer against the oracle. It also asserts the HYB≡BTC degeneration
// invariant: at ILIMIT=0 the two must produce identical metric records.
func RunClean(c Case) error {
	g, db, sources, err := c.materialize()
	if err != nil {
		return err
	}
	want := Oracle(c.Nodes, g.Arcs(), sources)
	records := make(map[core.Algorithm]core.Metrics, len(Candidates()))
	for _, alg := range Candidates() {
		res, err := core.Run(db, alg, core.Query{Sources: sources}, c.config())
		if err != nil {
			return fmt.Errorf("chaos: case {%s}: %s failed: %w", c, alg, err)
		}
		if err := diff(res.Successors, want); err != nil {
			return fmt.Errorf("chaos: case {%s}: %s disagrees with oracle: %w", c, alg, err)
		}
		records[alg] = res.Metrics
	}
	if c.ILIMIT == 0 {
		if b, h := fingerprint(records[core.BTC]), fingerprint(records[core.HYB]); b != h {
			return fmt.Errorf("chaos: case {%s}: HYB at ILIMIT=0 is not BTC:\n  btc %s\n  hyb %s", c, b, h)
		}
	}
	return nil
}

// RunFaulted executes every candidate algorithm on the case with the
// database's store wrapped in fault injection. Each run gets a fresh
// wrapper (so its injection sequence depends only on opts, making any
// single algorithm's failure independently replayable) and must either
// return the exact oracle answer or a clean transient error.
func RunFaulted(c Case, opts faultdisk.Options) error {
	g, db, sources, err := c.materialize()
	if err != nil {
		return err
	}
	want := Oracle(c.Nodes, g.Arcs(), sources)
	for _, alg := range Candidates() {
		if err := runOneFaulted(db, alg, sources, c, opts, want); err != nil {
			return err
		}
	}
	return nil
}

// runOneFaulted runs a single algorithm under injection, translating a
// panic into a harness failure with replay coordinates.
func runOneFaulted(db *core.Database, alg core.Algorithm, sources []int32, c Case, opts faultdisk.Options, want map[int32][]int32) (err error) {
	clean := db.SwapStore(faultdisk.Wrap(db.Store(), opts))
	defer db.SwapStore(clean)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("chaos: case {%s} faults {%s}: %s PANICKED: %v", c, opts, alg, r)
		}
	}()
	res, err := core.Run(db, alg, core.Query{Sources: sources}, c.config())
	if err != nil {
		if !pagedisk.IsTransient(err) {
			return fmt.Errorf("chaos: case {%s} faults {%s}: %s returned a non-transient error: %w", c, opts, alg, err)
		}
		return nil // clean failure: the contract under faults
	}
	if err := diff(res.Successors, want); err != nil {
		return fmt.Errorf("chaos: case {%s} faults {%s}: %s survived injection but disagrees with oracle: %w", c, opts, alg, err)
	}
	return nil
}

// MonotoneIO runs every candidate algorithm at each buffer size (ascending)
// and asserts total page I/O never increases with pool growth. The page
// reference strings of the candidates are independent of the pool when no
// diagonal block is configured, and LRU is a stack algorithm, so a larger
// pool can only turn misses into hits. The case's ILIMIT is forced to 0:
// HYB's blocking deliberately adapts to M, which voids the premise.
func MonotoneIO(c Case, sizes []int) error {
	c.ILIMIT = 0
	_, db, sources, err := c.materialize()
	if err != nil {
		return err
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	prev := make(map[core.Algorithm]int64, len(Candidates()))
	prevM := 0
	for _, m := range sorted {
		c.BufferPages = m
		for _, alg := range Candidates() {
			res, err := core.Run(db, alg, core.Query{Sources: sources}, c.config())
			if err != nil {
				return fmt.Errorf("chaos: case {%s}: %s at M=%d failed: %w", c, alg, m, err)
			}
			io := res.Metrics.TotalIO()
			if last, ok := prev[alg]; ok && io > last {
				return fmt.Errorf("chaos: case {%s}: %s page I/O grew from %d at M=%d to %d at M=%d",
					c, alg, last, prevM, io, m)
			}
			prev[alg] = io
		}
		prevM = m
	}
	return nil
}
