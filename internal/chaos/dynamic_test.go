package chaos

import (
	"testing"

	"tcstudy/internal/faultdisk"
)

// dynamicGrid builds the mutation-schedule grid: three graph shapes at
// several seeds each, alternating delete bias and rebuild cadence so some
// schedules live mostly in the overlay and others swap generations
// constantly.
func dynamicGrid(short bool) []MutationCase {
	shapes := []struct{ n, f, l int }{
		{40, 3, 12},
		{60, 4, 20},
		{90, 2, 45},
	}
	seeds := 4
	if short {
		seeds = 1
	}
	var cases []MutationCase
	for si, sh := range shapes {
		for k := 0; k < seeds; k++ {
			rebuild := 0 // overlay-only until the final replay
			if k%2 == 1 {
				rebuild = 3
			}
			cases = append(cases, MutationCase{
				Seed:         int64(9000 + si*100 + k),
				Nodes:        sh.n,
				OutDegree:    sh.f,
				Locality:     sh.l,
				Steps:        10,
				OpsPerStep:   4,
				DeletePct:    25 + 15*(k%3),
				RebuildEvery: rebuild,
				Probes:       12,
			})
		}
	}
	return cases
}

// TestDynamicDifferentialGrid is the mutation subsystem's core claim: for
// every seeded insert/delete schedule, reach answers agree with the BFS
// oracle after every batch (overlay included), after every generational
// rebuild, and after a crash-recovery log replay into a fresh service.
func TestDynamicDifferentialGrid(t *testing.T) {
	for _, c := range dynamicGrid(testing.Short()) {
		if err := RunDynamic(c); err != nil {
			t.Error(err)
		}
	}
}

// TestDynamicFaulted churns mutations while the frozen base relation's
// store injects read faults under a concurrent engine query: the mutation
// subsystem shares no storage with the engine, so probes must stay
// oracle-exact and the engine must stay exact-or-transient.
func TestDynamicFaulted(t *testing.T) {
	c := MutationCase{
		Seed: 9901, Nodes: 60, OutDegree: 4, Locality: 20,
		Steps: 8, OpsPerStep: 4, DeletePct: 35, RebuildEvery: 3, Probes: 10,
	}
	for _, opts := range []faultdisk.Options{
		{Seed: 1, ReadFailProb: 0.02},
		{Seed: 2, ReadFailProb: 0.2},
	} {
		if err := RunDynamicFaulted(c, opts); err != nil {
			t.Error(err)
		}
	}
}
