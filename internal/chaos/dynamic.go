package chaos

import (
	"fmt"

	"tcstudy/internal/core"
	"tcstudy/internal/dynamic"
	"tcstudy/internal/faultdisk"
	"tcstudy/internal/graph"
	"tcstudy/internal/graphgen"
	"tcstudy/internal/index"
	"tcstudy/internal/pagedisk"
)

// MutationCase is one seeded dynamic-service scenario: a generated base
// DAG plus a deterministic schedule of insert/delete batches.
type MutationCase struct {
	Seed      int64 // drives graph generation and the mutation schedule
	Nodes     int
	OutDegree int
	Locality  int

	Steps      int // mutation batches applied
	OpsPerStep int // arcs mutated per batch
	DeletePct  int // percentage of ops that are deletes (rest inserts)

	// RebuildEvery forces a generational rebuild after every k-th batch
	// (0: never — the overlay serves every dirty read). Between forced
	// rebuilds, dirty-state probes exercise the overlay path, so a
	// schedule with RebuildEvery > 1 covers both sides of a swap.
	RebuildEvery int

	// Probes is the number of random reach probes cross-checked against
	// the oracle after every batch (and again after every rebuild).
	Probes int
}

// String renders the case for replay messages.
func (c MutationCase) String() string {
	return fmt.Sprintf("seed=%d n=%d f=%d l=%d steps=%d ops=%d del=%d%% rebuild=%d probes=%d",
		c.Seed, c.Nodes, c.OutDegree, c.Locality, c.Steps, c.OpsPerStep, c.DeletePct, c.RebuildEvery, c.Probes)
}

// arcKey identifies one arc in the oracle's mirror of the live graph.
type arcKey struct{ from, to int32 }

// dynOracle answers reach probes by BFS over a mirror adjacency that is
// mutated in lockstep with the service. Closure semantics: a node reaches
// itself only through a cycle.
type dynOracle struct {
	n   int
	adj map[int32]map[int32]bool
}

func newDynOracle(n int, arcs []graph.Arc) *dynOracle {
	o := &dynOracle{n: n, adj: make(map[int32]map[int32]bool)}
	for _, a := range arcs {
		o.insert(a.From, a.To)
	}
	return o
}

func (o *dynOracle) insert(u, v int32) {
	if o.adj[u] == nil {
		o.adj[u] = make(map[int32]bool)
	}
	o.adj[u][v] = true
}

func (o *dynOracle) delete(u, v int32) {
	if o.adj[u] != nil {
		delete(o.adj[u], v)
	}
}

func (o *dynOracle) reach(src, dst int32) bool {
	seen := make([]bool, o.n+1)
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range o.adj[u] {
			if v == dst {
				return true
			}
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return false
}

// lcg is the schedule's deterministic random stream.
type lcg uint64

func (r *lcg) next(n int32) int32 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return int32(uint64(*r)>>33)%n + 1
}

func (r *lcg) pct() int {
	*r = *r*6364136223846793005 + 1442695040888963407
	return int(uint64(*r) >> 33 % 100)
}

// RunDynamic drives one seeded mutation schedule against the dynamic
// service and cross-checks every phase against the BFS oracle:
//
//   - after every batch, random reach probes must match the oracle exactly
//     — including while a closure-shrinking delete has the service dirty
//     and the delta overlay is answering;
//   - after every forced generational rebuild, the probes must still
//     match (the swapped index absorbed the replayed log);
//   - at the end, the mutation log is replayed into a fresh service built
//     from the base graph (crash recovery) which must converge to the
//     same sequence, fingerprint and answers, before and after its own
//     rebuild.
func RunDynamic(c MutationCase) error {
	svc, oracle, err := c.start()
	if err != nil {
		return err
	}
	defer svc.Close()
	return c.drive(svc, oracle, nil)
}

// RunDynamicFaulted runs the same schedule while the base relation's
// store is wrapped in fault injection and a frozen-graph engine query runs
// between batches. The mutation subsystem shares no storage with the
// engine, so injected faults must never perturb a probe's answer — and the
// engine itself must keep its exact-or-transient contract while mutations
// churn beside it.
func RunDynamicFaulted(c MutationCase, opts faultdisk.Options) error {
	svc, oracle, err := c.start()
	if err != nil {
		return err
	}
	defer svc.Close()

	arcs, err := graphgen.Generate(graphgen.Params{
		Nodes: c.Nodes, OutDegree: c.OutDegree, Locality: c.Locality, Seed: c.Seed,
	})
	if err != nil {
		return fmt.Errorf("chaos: dynamic case {%s}: generate: %w", c, err)
	}
	db := core.NewDatabase(c.Nodes, arcs)
	want := Oracle(c.Nodes, arcs, []int32{1})
	clean := db.SwapStore(faultdisk.Wrap(db.Store(), opts))
	defer db.SwapStore(clean)

	engineProbe := func() error {
		res, err := core.Run(db, core.SRCH, core.Query{Sources: []int32{1}}, core.Config{BufferPages: 8})
		if err != nil {
			if !pagedisk.IsTransient(err) {
				return fmt.Errorf("chaos: dynamic case {%s} faults {%s}: engine returned a non-transient error: %w", c, opts, err)
			}
			return nil // clean transient failure: the contract under faults
		}
		if err := diff(res.Successors, want); err != nil {
			return fmt.Errorf("chaos: dynamic case {%s} faults {%s}: engine survived injection but disagrees with oracle: %w", c, opts, err)
		}
		return nil
	}
	return c.drive(svc, oracle, engineProbe)
}

// start materializes the case: base graph, sealed index, dynamic service
// in manual-rebuild mode (the schedule controls every swap), and the
// oracle mirror.
func (c MutationCase) start() (*dynamic.Service, *dynOracle, error) {
	arcs, err := graphgen.Generate(graphgen.Params{
		Nodes: c.Nodes, OutDegree: c.OutDegree, Locality: c.Locality, Seed: c.Seed,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: dynamic case {%s}: generate: %w", c, err)
	}
	idx, err := index.Build(graph.New(c.Nodes, arcs))
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: dynamic case {%s}: build index: %w", c, err)
	}
	svc, err := dynamic.New(c.Nodes, arcs, idx, dynamic.Options{Manual: true})
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: dynamic case {%s}: new service: %w", c, err)
	}
	return svc, newDynOracle(c.Nodes, svc.Arcs()), nil
}

// drive applies the schedule, probing after every batch and rebuild, then
// runs the crash-recovery replay. between, when set, runs after each batch
// (the faulted engine probe).
func (c MutationCase) drive(svc *dynamic.Service, oracle *dynOracle, between func() error) error {
	rng := lcg(uint64(c.Seed)*2654435761 + 1)
	probe := func(phase string) error {
		prng := rng // probes must not advance the schedule stream
		for p := 0; p < c.Probes; p++ {
			src, dst := prng.next(int32(c.Nodes)), prng.next(int32(c.Nodes))
			got, _, _, err := svc.Reach(src, dst, 0)
			if err != nil {
				return fmt.Errorf("chaos: dynamic case {%s}: %s: reach(%d,%d): %w", c, phase, src, dst, err)
			}
			if want := oracle.reach(src, dst); got != want {
				return fmt.Errorf("chaos: dynamic case {%s}: %s: reach(%d,%d)=%t, oracle says %t",
					c, phase, src, dst, got, want)
			}
		}
		return nil
	}

	for step := 0; step < c.Steps; step++ {
		ops := make([]dynamic.Op, 0, c.OpsPerStep)
		for k := 0; k < c.OpsPerStep; k++ {
			op := dynamic.OpInsert
			if rng.pct() < c.DeletePct {
				op = dynamic.OpDelete
			}
			ops = append(ops, dynamic.Op{Op: op, From: rng.next(int32(c.Nodes)), To: rng.next(int32(c.Nodes))})
		}
		if _, err := svc.Apply(ops); err != nil {
			return fmt.Errorf("chaos: dynamic case {%s}: step %d: apply: %w", c, step, err)
		}
		for _, o := range ops {
			if o.Op == dynamic.OpInsert {
				oracle.insert(o.From, o.To)
			} else {
				oracle.delete(o.From, o.To)
			}
		}
		if err := probe(fmt.Sprintf("step %d", step)); err != nil {
			return err
		}
		if between != nil {
			if err := between(); err != nil {
				return err
			}
		}
		if c.RebuildEvery > 0 && (step+1)%c.RebuildEvery == 0 {
			if err := svc.RebuildNow(); err != nil {
				return fmt.Errorf("chaos: dynamic case {%s}: step %d: rebuild: %w", c, step, err)
			}
			if err := probe(fmt.Sprintf("step %d post-rebuild", step)); err != nil {
				return err
			}
		}
	}

	// Crash recovery: a fresh service over the base graph replays the
	// mutation log and must converge to the same state.
	arcs, err := graphgen.Generate(graphgen.Params{
		Nodes: c.Nodes, OutDegree: c.OutDegree, Locality: c.Locality, Seed: c.Seed,
	})
	if err != nil {
		return fmt.Errorf("chaos: dynamic case {%s}: regenerate: %w", c, err)
	}
	idx, err := index.Build(graph.New(c.Nodes, arcs))
	if err != nil {
		return fmt.Errorf("chaos: dynamic case {%s}: rebuild base index: %w", c, err)
	}
	fresh, err := dynamic.New(c.Nodes, arcs, idx, dynamic.Options{Manual: true})
	if err != nil {
		return fmt.Errorf("chaos: dynamic case {%s}: fresh service: %w", c, err)
	}
	defer fresh.Close()
	if err := fresh.ReplayLog(svc.Log()); err != nil {
		return fmt.Errorf("chaos: dynamic case {%s}: replay: %w", c, err)
	}
	a, b := svc.Stats(), fresh.Stats()
	if a.Seq != b.Seq || a.Fingerprint != b.Fingerprint || a.NumArcs != b.NumArcs {
		return fmt.Errorf("chaos: dynamic case {%s}: replayed service diverged: seq %d/%d fp %016x/%016x arcs %d/%d",
			c, a.Seq, b.Seq, a.Fingerprint, b.Fingerprint, a.NumArcs, b.NumArcs)
	}
	check := func(s *dynamic.Service, phase string) error {
		prng := rng
		for p := 0; p < c.Probes*2; p++ {
			src, dst := prng.next(int32(c.Nodes)), prng.next(int32(c.Nodes))
			got, _, _, err := s.Reach(src, dst, 0)
			if err != nil {
				return fmt.Errorf("chaos: dynamic case {%s}: %s: reach(%d,%d): %w", c, phase, src, dst, err)
			}
			if want := oracle.reach(src, dst); got != want {
				return fmt.Errorf("chaos: dynamic case {%s}: %s: reach(%d,%d)=%t, oracle says %t",
					c, phase, src, dst, got, want)
			}
		}
		return nil
	}
	if err := check(fresh, "post-replay"); err != nil {
		return err
	}
	if err := fresh.RebuildNow(); err != nil {
		return fmt.Errorf("chaos: dynamic case {%s}: post-replay rebuild: %w", c, err)
	}
	if err := check(fresh, "post-replay rebuild"); err != nil {
		return err
	}

	// Full-closure differential over the mutated final graph: the schedule
	// typically leaves cycles (and occasionally self-loops) behind, so this
	// drives the bit-matrix strategy's SCC condensation and membership
	// expansion — or its cyclic fallback — against the BFS oracle on a
	// shape no generated DAG covers.
	final := svc.Arcs()
	res, err := core.Run(core.NewDatabase(c.Nodes, final), core.BITM, core.Query{}, core.Config{BufferPages: 8})
	if err != nil {
		return fmt.Errorf("chaos: dynamic case {%s}: bitmatrix on final graph: %w", c, err)
	}
	if err := diff(res.Successors, Oracle(c.Nodes, final, nil)); err != nil {
		return fmt.Errorf("chaos: dynamic case {%s}: bitmatrix disagrees with oracle on final graph: %w", c, err)
	}
	return nil
}
