// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation section, each exercising the exact code path the full-scale
// experiment runs (cmd/tcbench regenerates the complete artifacts; these
// benches track the cost of their representative cells on reduced-size
// graphs so `go test -bench .` stays quick). Page I/O — the paper's
// primary metric — is reported alongside time via ReportMetric.
package tcstudy_test

import (
	"fmt"
	"sync"
	"testing"

	"tcstudy"
	"tcstudy/internal/core"
	"tcstudy/internal/experiments"
	"tcstudy/internal/graphgen"
)

// benchNodes keeps benchmark graphs at 1/4 study scale with proportionally
// scaled localities, preserving every family's shape.
const benchNodes = 500

type benchGraph struct {
	g  *tcstudy.Graph
	db *tcstudy.DB
}

var (
	benchMu     sync.Mutex
	benchGraphs = map[string]*benchGraph{}
)

// family returns a cached reduced-scale instance of one study family.
func family(b *testing.B, name string) *benchGraph {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if bg, ok := benchGraphs[name]; ok {
		return bg
	}
	var spec experiments.GraphSpec
	for _, s := range experiments.StudyGraphs() {
		if s.Name == name {
			spec = s
		}
	}
	if spec.Name == "" {
		b.Fatalf("unknown family %s", name)
	}
	l := spec.Locality * benchNodes / 2000
	if l < 2 {
		l = 2
	}
	g, err := tcstudy.Generate(benchNodes, spec.OutDegree, l, 1)
	if err != nil {
		b.Fatal(err)
	}
	bg := &benchGraph{g: g, db: tcstudy.NewDB(g)}
	benchGraphs[name] = bg
	return bg
}

// runCell executes one (graph, algorithm, query, config) cell b.N times and
// reports page I/O.
func runCell(b *testing.B, name string, alg tcstudy.Algorithm, nSources int, cfg tcstudy.Config) {
	b.Helper()
	bg := family(b, name)
	var sources []int32
	if nSources > 0 {
		sources = graphgen.SourceSet(benchNodes, nSources, 3)
	}
	var io int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bg.db.Run(alg, tcstudy.Query{Sources: sources}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		io = res.Metrics.TotalIO()
	}
	b.ReportMetric(float64(io), "pageIO/op")
}

// BenchmarkTable2GraphParameters measures the Table 2 characterization
// pass (levels, reduction, rectangle model, closure size).
func BenchmarkTable2GraphParameters(b *testing.B) {
	bg := family(b, "G5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bg.g.Stats(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3CostBreakdown measures BTC's full closure of G6 across the
// study's buffer sizes.
func BenchmarkTable3CostBreakdown(b *testing.B) {
	for _, m := range []int{10, 20, 50} {
		b.Run(fmt.Sprintf("M%d", m), func(b *testing.B) {
			runCell(b, "G6", tcstudy.BTC, 0, tcstudy.Config{BufferPages: m})
		})
	}
}

// BenchmarkFig6HybridBlocking measures the blocking sweep on G9.
func BenchmarkFig6HybridBlocking(b *testing.B) {
	for _, il := range []float64{0, 0.1, 0.3} {
		b.Run(fmt.Sprintf("ILIMIT%.1f", il), func(b *testing.B) {
			runCell(b, "G9", tcstudy.HYB, 0, tcstudy.Config{BufferPages: 20, ILIMIT: il})
		})
	}
}

// BenchmarkFig7TreeAlgorithms measures the CTC tree-algorithm comparison on
// the locality-200 family G5.
func BenchmarkFig7TreeAlgorithms(b *testing.B) {
	for _, alg := range []tcstudy.Algorithm{tcstudy.BTC, tcstudy.SPN, tcstudy.JKB, tcstudy.JKB2} {
		b.Run(string(alg), func(b *testing.B) {
			runCell(b, "G5", alg, 0, tcstudy.Config{BufferPages: 20})
		})
	}
}

// BenchmarkFig8HighSelectivity measures the high-selectivity PTC grid's
// algorithms at s=10 on both study graphs.
func BenchmarkFig8HighSelectivity(b *testing.B) {
	for _, name := range []string{"G4", "G11"} {
		for _, alg := range []tcstudy.Algorithm{tcstudy.BTC, tcstudy.BJ, tcstudy.JKB2, tcstudy.SRCH} {
			b.Run(name+"/"+string(alg), func(b *testing.B) {
				runCell(b, name, alg, 10, tcstudy.Config{BufferPages: 10})
			})
		}
	}
}

// BenchmarkFig9SelectionEfficiency measures the tuple-generation accounting
// path (BTC vs JKB2, whose selection efficiencies bracket the field).
func BenchmarkFig9SelectionEfficiency(b *testing.B) {
	for _, alg := range []tcstudy.Algorithm{tcstudy.BTC, tcstudy.JKB2} {
		b.Run(string(alg), func(b *testing.B) {
			runCell(b, "G4", alg, 5, tcstudy.Config{BufferPages: 10})
		})
	}
}

// BenchmarkFig10Unions measures the union-heavy SRCH cell.
func BenchmarkFig10Unions(b *testing.B) {
	runCell(b, "G4", tcstudy.SRCH, 20, tcstudy.Config{BufferPages: 10})
}

// BenchmarkFig11Marking measures the marking-optimization hot path (BTC on
// the heavily redundant G11).
func BenchmarkFig11Marking(b *testing.B) {
	runCell(b, "G11", tcstudy.BTC, 10, tcstudy.Config{BufferPages: 10})
}

// BenchmarkFig12UnmarkedLocality measures the locality bookkeeping on the
// deep G4.
func BenchmarkFig12UnmarkedLocality(b *testing.B) {
	runCell(b, "G4", tcstudy.BJ, 10, tcstudy.Config{BufferPages: 10})
}

// BenchmarkFig13BufferSize measures buffer sensitivity end to end.
func BenchmarkFig13BufferSize(b *testing.B) {
	for _, m := range []int{10, 50} {
		b.Run(fmt.Sprintf("M%d", m), func(b *testing.B) {
			runCell(b, "G11", tcstudy.JKB2, 10, tcstudy.Config{BufferPages: m})
		})
	}
}

// BenchmarkFig14LowSelectivity measures the low-selectivity regime (s a
// quarter of the graph, the bench-scale analogue of s=500 at n=2000).
func BenchmarkFig14LowSelectivity(b *testing.B) {
	for _, alg := range []tcstudy.Algorithm{tcstudy.BTC, tcstudy.BJ, tcstudy.JKB2} {
		b.Run(string(alg), func(b *testing.B) {
			runCell(b, "G9", alg, benchNodes/4, tcstudy.Config{BufferPages: 20})
		})
	}
}

// BenchmarkTable4WidthPrediction measures the JKB2-vs-BTC pair on the
// narrow and wide extremes that anchor Table 4.
func BenchmarkTable4WidthPrediction(b *testing.B) {
	for _, name := range []string{"G4", "G12"} {
		for _, alg := range []tcstudy.Algorithm{tcstudy.BTC, tcstudy.JKB2} {
			b.Run(name+"/"+string(alg), func(b *testing.B) {
				runCell(b, name, alg, 5, tcstudy.Config{BufferPages: 10})
			})
		}
	}
}

// BenchmarkAblationMarking measures BTC with the marking optimization
// disabled, the cost Table DESIGN.md's ablation quantifies.
func BenchmarkAblationMarking(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		runCell(b, "G5", tcstudy.BTC, 0, tcstudy.Config{BufferPages: 10})
	})
	b.Run("off", func(b *testing.B) {
		runCell(b, "G5", tcstudy.BTC, 0, tcstudy.Config{BufferPages: 10, DisableMarking: true})
	})
}

// BenchmarkSubstrates isolates the storage substrates under the closure
// workload: restructuring only (relation probes + successor list writes).
func BenchmarkSubstrates(b *testing.B) {
	b.Run("restructure", func(b *testing.B) {
		// SRCH with one source node exercises probe I/O with no list
		// expansion to speak of.
		runCell(b, "G5", tcstudy.SRCH, 1, tcstudy.Config{BufferPages: 10})
	})
	b.Run("condense", func(b *testing.B) {
		bg := family(b, "G5")
		arcs := bg.g.Arcs()
		g := tcstudy.NewGraph(benchNodes, arcs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tcstudy.ClosureOfCyclic(g, tcstudy.BTC, tcstudy.Config{BufferPages: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoreUnion isolates the successor-list union inner loop by
// running the expansion of a dense CTC with a pool large enough to stay
// memory-resident.
func BenchmarkCoreUnion(b *testing.B) {
	bg := family(b, "G8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bg.db.Run(core.BTC, tcstudy.Query{}, tcstudy.Config{BufferPages: 64})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkRelatedWorkBaselines measures the iterative and matrix
// baselines against BTC on one family (the relatedwork experiment's cells).
func BenchmarkRelatedWorkBaselines(b *testing.B) {
	for _, alg := range []tcstudy.Algorithm{tcstudy.BTC, tcstudy.SEMI, tcstudy.WARREN} {
		b.Run(string(alg)+"/ctc", func(b *testing.B) {
			runCell(b, "G2", alg, 0, tcstudy.Config{BufferPages: 10})
		})
		b.Run(string(alg)+"/ptc", func(b *testing.B) {
			runCell(b, "G2", alg, 10, tcstudy.Config{BufferPages: 10})
		})
	}
}

// BenchmarkPathAggregates measures the generalized-closure extension.
func BenchmarkPathAggregates(b *testing.B) {
	for _, agg := range []tcstudy.PathAggregate{tcstudy.MinHops, tcstudy.MaxHops, tcstudy.PathCount} {
		b.Run(string(agg), func(b *testing.B) {
			bg := family(b, "G5")
			b.ResetTimer()
			var io int64
			for i := 0; i < b.N; i++ {
				res, err := bg.db.Paths(agg, nil, tcstudy.Config{BufferPages: 20})
				if err != nil {
					b.Fatal(err)
				}
				io = res.Metrics.TotalIO()
			}
			b.ReportMetric(float64(io), "pageIO/op")
		})
	}
}

// BenchmarkSessionWarmVsCold measures the warm-buffer session against
// per-query cold pools.
func BenchmarkSessionWarmVsCold(b *testing.B) {
	bg := family(b, "G5")
	sources := graphgen.SourceSet(benchNodes, 5, 3)
	b.Run("cold", func(b *testing.B) {
		var io int64
		for i := 0; i < b.N; i++ {
			res, err := bg.db.Successors(tcstudy.SRCH, sources, tcstudy.Config{BufferPages: 40})
			if err != nil {
				b.Fatal(err)
			}
			io = res.Metrics.TotalIO()
		}
		b.ReportMetric(float64(io), "pageIO/op")
	})
	b.Run("warm", func(b *testing.B) {
		s, err := bg.db.NewSession(tcstudy.Config{BufferPages: 40})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Successors(tcstudy.SRCH, sources); err != nil {
			b.Fatal(err) // prime the pool
		}
		b.ResetTimer()
		var io int64
		for i := 0; i < b.N; i++ {
			res, err := s.Successors(tcstudy.SRCH, sources)
			if err != nil {
				b.Fatal(err)
			}
			io = res.Metrics.TotalIO()
		}
		b.ReportMetric(float64(io), "pageIO/op")
	})
}

// BenchmarkSchmitzCyclic measures the native cyclic closure (Schmitz)
// against the condensation pipeline on a cyclic graph.
func BenchmarkSchmitzCyclic(b *testing.B) {
	// A cyclic variant of the G5 family: forward DAG arcs plus back arcs.
	base := family(b, "G5")
	arcs := base.g.Arcs()
	n := benchNodes
	for i := 0; i < len(arcs)/10; i++ {
		arcs = append(arcs, tcstudy.Arc{
			From: arcs[i].To, To: arcs[i].From, // a back arc closing a cycle
		})
	}
	g := tcstudy.NewGraph(n, arcs)
	db := tcstudy.NewDB(g)
	b.Run("schmitz", func(b *testing.B) {
		var io int64
		for i := 0; i < b.N; i++ {
			res, err := db.Run(tcstudy.SCHMITZ, tcstudy.Query{}, tcstudy.Config{BufferPages: 20})
			if err != nil {
				b.Fatal(err)
			}
			io = res.Metrics.TotalIO()
		}
		b.ReportMetric(float64(io), "pageIO/op")
	})
	b.Run("condense+btc", func(b *testing.B) {
		var io int64
		for i := 0; i < b.N; i++ {
			cc, err := tcstudy.ClosureOfCyclic(g, tcstudy.BTC, tcstudy.Config{BufferPages: 20})
			if err != nil {
				b.Fatal(err)
			}
			io = cc.Metrics.TotalIO()
		}
		b.ReportMetric(float64(io), "pageIO/op")
	})
}

// BenchmarkBitMatrixClosure measures the dense-core bit-matrix kernel
// against BTC on the workload it was built for: a full closure over a
// dense DAG whose condensation fits the in-memory threshold. The kernel's
// word-parallel row unions (64 reachability bits per OR) are the entire
// compute phase; BTC pays per-tuple successor-list work for the same
// answer.
func BenchmarkBitMatrixClosure(b *testing.B) {
	// Dense core: 500 nodes, out-degree uniform on [0,16], full locality.
	// Density ≈ |A|/n² sits well above the kernel's MinDensity gate.
	g, err := tcstudy.Generate(benchNodes, 12, benchNodes, 11)
	if err != nil {
		b.Fatal(err)
	}
	db := tcstudy.NewDB(g)
	for _, tc := range []struct {
		name string
		alg  tcstudy.Algorithm
		cfg  tcstudy.Config
	}{
		{"btc", tcstudy.BTC, tcstudy.Config{BufferPages: 20}},
		{"bitmatrix", tcstudy.BITM, tcstudy.Config{BufferPages: 20}},
		{"bitmatrix-par4", tcstudy.BITM, tcstudy.Config{BufferPages: 20, Parallelism: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var io int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Run(tc.alg, tcstudy.Query{}, tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				io = res.Metrics.TotalIO()
			}
			b.ReportMetric(float64(io), "pageIO/op")
		})
	}
}

// BenchmarkPlanner measures profile construction plus estimation.
func BenchmarkPlanner(b *testing.B) {
	bg := family(b, "G5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bg.db.Plan(5, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrent measures an 8-query mixed batch.
func BenchmarkConcurrent(b *testing.B) {
	bg := family(b, "G5")
	sources := graphgen.SourceSet(benchNodes, 4, 3)
	reqs := []tcstudy.Request{
		{Alg: tcstudy.BTC, Query: tcstudy.Query{}, Cfg: tcstudy.Config{BufferPages: 10}},
		{Alg: tcstudy.SRCH, Query: tcstudy.Query{Sources: sources}, Cfg: tcstudy.Config{BufferPages: 10}},
		{Alg: tcstudy.JKB2, Query: tcstudy.Query{Sources: sources}, Cfg: tcstudy.Config{BufferPages: 10}},
		{Alg: tcstudy.BJ, Query: tcstudy.Query{Sources: sources}, Cfg: tcstudy.Config{BufferPages: 10}},
		{Alg: tcstudy.SPN, Query: tcstudy.Query{}, Cfg: tcstudy.Config{BufferPages: 10}},
		{Alg: tcstudy.SCHMITZ, Query: tcstudy.Query{}, Cfg: tcstudy.Config{BufferPages: 10}},
		{Alg: tcstudy.WARREN, Query: tcstudy.Query{}, Cfg: tcstudy.Config{BufferPages: 10}},
		{Alg: tcstudy.SEMI, Query: tcstudy.Query{Sources: sources}, Cfg: tcstudy.Config{BufferPages: 10}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range bg.db.RunConcurrent(reqs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
